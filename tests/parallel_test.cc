// Multicore intersection correctness: thread counts must not change counts.
#include "fesia/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "datagen/datagen.h"
#include "fesia/backends.h"
#include "fesia/intersect.h"
#include "test_util.h"
#include "util/deadline.h"
#include "util/thread_pool.h"

namespace fesia {
namespace {

using ::fesia::datagen::PairWithSelectivity;
using ::fesia::datagen::SetPair;
using ::fesia::testing::AvailableLevels;

TEST(ParallelTest, ThreadCountsAgreeWithSequential) {
  SetPair pair = PairWithSelectivity(50000, 50000, 0.02, 1);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  size_t expected = pair.intersection_size;
  ASSERT_EQ(IntersectCount(fa, fb), expected);
  for (size_t threads : {1, 2, 3, 4, 8}) {
    EXPECT_EQ(IntersectCountParallel(fa, fb, threads), expected)
        << "threads=" << threads;
  }
}

TEST(ParallelTest, AllLevelsAllThreadCounts) {
  SetPair pair = PairWithSelectivity(20000, 20000, 0.1, 2);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  for (SimdLevel level : AvailableLevels()) {
    for (size_t threads : {1, 2, 4}) {
      EXPECT_EQ(IntersectCountParallel(fa, fb, threads, level),
                pair.intersection_size)
          << SimdLevelName(level) << " threads=" << threads;
    }
  }
}

TEST(ParallelTest, MoreThreadsThanChunksClamps) {
  // A tiny set has few bitmap chunks; excess threads must be harmless.
  SetPair pair = PairWithSelectivity(50, 50, 0.5, 3);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  EXPECT_EQ(IntersectCountParallel(fa, fb, 64), pair.intersection_size);
}

TEST(ParallelTest, SkewedBitmapSizes) {
  SetPair pair = PairWithSelectivity(500, 80000, 0.2, 4);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  for (size_t threads : {2, 4}) {
    EXPECT_EQ(IntersectCountParallel(fa, fb, threads),
              pair.intersection_size)
        << "threads=" << threads;
  }
}

TEST(ParallelTest, IntoParallelMatchesReferenceElements) {
  SetPair pair = PairWithSelectivity(30000, 30000, 0.05, 6);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  std::vector<uint32_t> expected;
  std::set_intersection(pair.a.begin(), pair.a.end(), pair.b.begin(),
                        pair.b.end(), std::back_inserter(expected));
  for (size_t threads : {1, 2, 4, 7}) {
    std::vector<uint32_t> out;
    size_t r = IntersectIntoParallel(fa, fb, &out, threads);
    ASSERT_EQ(r, expected.size()) << "threads=" << threads;
    EXPECT_EQ(out, expected) << "threads=" << threads;
  }
}

TEST(ParallelTest, IntoParallelUnsortedHasSameElements) {
  SetPair pair = PairWithSelectivity(10000, 10000, 0.1, 7);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  std::vector<uint32_t> out;
  IntersectIntoParallel(fa, fb, &out, 4, /*sort_output=*/false);
  std::sort(out.begin(), out.end());
  std::vector<uint32_t> expected;
  std::set_intersection(pair.a.begin(), pair.a.end(), pair.b.begin(),
                        pair.b.end(), std::back_inserter(expected));
  EXPECT_EQ(out, expected);
}

TEST(ParallelTest, IntoParallelAllLevels) {
  SetPair pair = PairWithSelectivity(20000, 20000, 0.02, 8);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  for (SimdLevel level : AvailableLevels()) {
    std::vector<uint32_t> out;
    size_t r = IntersectIntoParallel(fa, fb, &out, 3, true, level);
    EXPECT_EQ(r, pair.intersection_size) << SimdLevelName(level);
  }
}

TEST(ParallelTest, IntoParallelEmpty) {
  FesiaSet empty = FesiaSet::Build({});
  FesiaSet some = FesiaSet::Build(datagen::SortedUniform(100, 1000, 9));
  std::vector<uint32_t> out = {1, 2, 3};
  EXPECT_EQ(IntersectIntoParallel(empty, some, &out, 4), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(ParallelTest, EmptyInputs) {
  FesiaSet empty = FesiaSet::Build({});
  FesiaSet some = FesiaSet::Build(datagen::SortedUniform(100, 1000, 5));
  EXPECT_EQ(IntersectCountParallel(empty, some, 4), 0u);
  EXPECT_EQ(IntersectCountParallel(some, empty, 4), 0u);
}

TEST(ParallelTest, IntoParallelSkewedPairExactElements) {
  // Very different sizes -> different bitmap sizes; exercises the
  // offsets-based slice capacity bound on both argument orders.
  SetPair pair = PairWithSelectivity(800, 60000, 0.3, 12);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  std::vector<uint32_t> expected;
  std::set_intersection(pair.a.begin(), pair.a.end(), pair.b.begin(),
                        pair.b.end(), std::back_inserter(expected));
  for (size_t threads : {2, 4, 8}) {
    std::vector<uint32_t> out;
    EXPECT_EQ(IntersectIntoParallel(fa, fb, &out, threads), expected.size());
    EXPECT_EQ(out, expected) << "a,b threads=" << threads;
    EXPECT_EQ(IntersectIntoParallel(fb, fa, &out, threads), expected.size());
    EXPECT_EQ(out, expected) << "b,a threads=" << threads;
  }
}

// Regression for the tail-chunk bug: every segment-range partition must
// cover all of [0, total_segs), so parallel counts cannot lose elements
// regardless of how the segment count divides into bitmap chunks. Sweeps
// set sizes (and hence segment counts) against awkward thread counts at
// every ISA level.
TEST(ParallelTest, NoTailSegmentLossAcrossSizesAndLevels) {
  for (uint32_t n : {30u, 100u, 500u, 3000u, 20000u}) {
    SetPair pair = PairWithSelectivity(n, n, 0.2, n);
    FesiaSet fa = FesiaSet::Build(pair.a);
    FesiaSet fb = FesiaSet::Build(pair.b);
    for (SimdLevel level : AvailableLevels()) {
      size_t expected = IntersectCount(fa, fb, level);
      for (size_t threads : {2, 3, 5, 7, 16}) {
        EXPECT_EQ(IntersectCountParallel(fa, fb, threads, level), expected)
            << "n=" << n << " level=" << SimdLevelName(level)
            << " threads=" << threads;
        std::vector<uint32_t> out;
        EXPECT_EQ(IntersectIntoParallel(fa, fb, &out, threads, true, level),
                  expected)
            << "n=" << n << " level=" << SimdLevelName(level)
            << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelTest, NarrowSegmentsTailCoverage) {
  // 8-bit segments give the largest chunk counts (64 segs/chunk at AVX512);
  // make sure chunk rounding never drops the trailing range.
  FesiaParams p;
  p.segment_bits = 8;
  SetPair pair = PairWithSelectivity(10000, 10000, 0.1, 21);
  FesiaSet fa = FesiaSet::Build(pair.a, p);
  FesiaSet fb = FesiaSet::Build(pair.b, p);
  for (SimdLevel level : AvailableLevels()) {
    size_t expected = IntersectCount(fa, fb, level);
    for (size_t threads : {2, 4, 8}) {
      EXPECT_EQ(IntersectCountParallel(fa, fb, threads, level), expected)
          << SimdLevelName(level) << " threads=" << threads;
    }
  }
}

TEST(ParallelTest, CustomExecutorPool) {
  SetPair pair = PairWithSelectivity(30000, 30000, 0.05, 13);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  ThreadPool pool(3);
  Executor exec(&pool);
  EXPECT_EQ(IntersectCountParallel(fa, fb, 4, SimdLevel::kAuto, exec),
            pair.intersection_size);
  std::vector<uint32_t> out;
  EXPECT_EQ(
      IntersectIntoParallel(fa, fb, &out, 4, true, SimdLevel::kAuto, exec),
      pair.intersection_size);
}

// --- Cancellation ------------------------------------------------------------

TEST(ParallelCancelTest, InertContextMatchesSequential) {
  SetPair pair = PairWithSelectivity(30000, 30000, 0.05, 14);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  bool stopped = true;
  EXPECT_EQ(IntersectCountCancellable(fa, fb, CancelContext{},
                                      SimdLevel::kAuto, &stopped),
            pair.intersection_size);
  EXPECT_FALSE(stopped);
  std::vector<uint32_t> out;
  stopped = true;
  EXPECT_EQ(IntersectIntoCancellable(fa, fb, &out, CancelContext{}, true,
                                     SimdLevel::kAuto, &stopped),
            pair.intersection_size);
  EXPECT_FALSE(stopped);
}

TEST(ParallelCancelTest, GenerousDeadlineDoesNotChangeResults) {
  // An active context forces the chunk-polling loops; a far-away deadline
  // must never fire, so every thread count still returns the exact count.
  SetPair pair = PairWithSelectivity(40000, 40000, 0.03, 15);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  CancelContext cancel(Deadline::After(300));
  ASSERT_TRUE(cancel.active());
  for (size_t threads : {1, 2, 4}) {
    bool stopped = true;
    EXPECT_EQ(IntersectCountParallel(fa, fb, threads, SimdLevel::kAuto, {},
                                     cancel, &stopped),
              pair.intersection_size)
        << "threads=" << threads;
    EXPECT_FALSE(stopped);
    std::vector<uint32_t> out;
    stopped = true;
    EXPECT_EQ(IntersectIntoParallel(fa, fb, &out, threads, true,
                                    SimdLevel::kAuto, {}, cancel, &stopped),
              pair.intersection_size)
        << "threads=" << threads;
    EXPECT_FALSE(stopped);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  }
}

TEST(ParallelCancelTest, PreCancelledTokenStopsEveryEntryPoint) {
  SetPair pair = PairWithSelectivity(30000, 30000, 0.05, 16);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  CancellationToken token = CancellationToken::Create();
  token.Cancel();
  CancelContext cancel(token);

  bool stopped = false;
  (void)IntersectCountCancellable(fa, fb, cancel, SimdLevel::kAuto, &stopped);
  EXPECT_TRUE(stopped);
  stopped = false;
  (void)IntersectCountParallel(fa, fb, 4, SimdLevel::kAuto, {}, cancel,
                               &stopped);
  EXPECT_TRUE(stopped);
  std::vector<uint32_t> out;
  stopped = false;
  (void)IntersectIntoCancellable(fa, fb, &out, cancel, true, SimdLevel::kAuto,
                                 &stopped);
  EXPECT_TRUE(stopped);
  stopped = false;
  (void)IntersectIntoParallel(fa, fb, &out, 4, true, SimdLevel::kAuto, {},
                              cancel, &stopped);
  EXPECT_TRUE(stopped);
}

TEST(ParallelCancelTest, ExpiredDeadlineStops) {
  SetPair pair = PairWithSelectivity(30000, 30000, 0.05, 17);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  CancelContext cancel(Deadline::After(0));  // non-positive budget: expired
  bool stopped = false;
  (void)IntersectCountCancellable(fa, fb, cancel, SimdLevel::kAuto, &stopped);
  EXPECT_TRUE(stopped);
}

TEST(ParallelCancelTest, MidFlightCancelStopsParallelCall) {
  // Cancel from another thread while a 4-way parallel count runs; the call
  // must return (stopped or complete) rather than hang — and once the
  // token fires before any chunk, stopped must be reported.
  SetPair pair = PairWithSelectivity(80000, 80000, 0.1, 18);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  CancellationToken token = CancellationToken::Create();
  std::thread canceller([&] { token.Cancel(); });
  bool stopped = false;
  size_t r = IntersectCountParallel(fa, fb, 4, SimdLevel::kAuto, {},
                                    CancelContext(token), &stopped);
  canceller.join();
  if (!stopped) {
    EXPECT_EQ(r, pair.intersection_size);
  }
}

// Builds a pair whose bitmaps land on exactly `segments` segments of 16
// bits: bitmap_scale * n = segments * 16 is a power of two, so the
// round-up in FesiaSet::Build keeps it bit-exact. `segments` must be >= 4
// (Build floors every bitmap at one 64-bit word). Lets the cancellation
// tests pin work sizes directly onto the poll-chunk boundary.
std::pair<FesiaSet, FesiaSet> PairWithSegments(uint32_t segments,
                                               uint64_t seed,
                                               size_t* expected) {
  size_t n = size_t{segments} * 4;
  FesiaParams p;
  p.segment_bits = 16;
  p.bitmap_scale = 4.0;  // 4 * (4 * segments) = segments * 16 bits exactly
  SetPair pair = PairWithSelectivity(n, n, 0.3, seed);
  *expected = pair.intersection_size;
  return {FesiaSet::Build(pair.a, p), FesiaSet::Build(pair.b, p)};
}

TEST(ParallelCancelTest, ChunkBoundarySegmentCountsStayExact) {
  // The polling loops walk SegmentChunk(level, 16) segments per poll;
  // this pins the total segment count onto poll-chunk multiples from the
  // smallest constructible bitmap (32 segments — exactly ONE poll chunk at
  // AVX-512, a handful at narrower levels) up through many chunks, then
  // sweeps thread counts that do not divide the chunk count evenly (8
  // chunks over 3 threads -> 3/3/2), so per-thread ranges straddle poll
  // boundaries at odd offsets. An active context with a generous deadline
  // must never change a count or an element.
  for (SimdLevel level : AvailableLevels()) {
    uint32_t chunk = internal::SegmentChunk(level, 16);
    ASSERT_GT(chunk, 0u) << SimdLevelName(level);
    for (uint32_t segs : {32u, 64u, 8 * chunk, 16 * chunk}) {
      ASSERT_GE(segs, chunk) << SimdLevelName(level);
      size_t expected = 0;
      auto [fa, fb] = PairWithSegments(segs, 100 + segs, &expected);
      ASSERT_EQ(fa.num_segments(), segs);
      ASSERT_EQ(IntersectCount(fa, fb, level), expected);
      CancelContext cancel(Deadline::After(300));
      ASSERT_TRUE(cancel.active());

      bool stopped = true;
      EXPECT_EQ(IntersectCountCancellable(fa, fb, cancel, level, &stopped),
                expected)
          << SimdLevelName(level) << " segs=" << segs;
      EXPECT_FALSE(stopped);
      std::vector<uint32_t> out;
      stopped = true;
      EXPECT_EQ(
          IntersectIntoCancellable(fa, fb, &out, cancel, true, level,
                                   &stopped),
          expected)
          << SimdLevelName(level) << " segs=" << segs;
      EXPECT_FALSE(stopped);

      for (size_t threads : {1, 2, 3, 4, 5}) {
        stopped = true;
        EXPECT_EQ(IntersectCountParallel(fa, fb, threads, level, {}, cancel,
                                         &stopped),
                  expected)
            << SimdLevelName(level) << " segs=" << segs
            << " threads=" << threads;
        EXPECT_FALSE(stopped);
        stopped = true;
        EXPECT_EQ(IntersectIntoParallel(fa, fb, &out, threads, true, level,
                                        {}, cancel, &stopped),
                  expected)
            << SimdLevelName(level) << " segs=" << segs
            << " threads=" << threads;
        EXPECT_FALSE(stopped);
        EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
      }
    }
  }
}

TEST(ParallelCancelTest, PreCancelledStopsSmallestConstructibleJob) {
  // A one-poll-chunk job (512 bitmap bits: exactly one poll chunk at
  // AVX-512) must still observe the token: the poll happens before the
  // first chunk, not only between chunks.
  for (SimdLevel level : AvailableLevels()) {
    uint32_t chunk = internal::SegmentChunk(level, 16);
    uint32_t segs = 32;
    size_t expected = 0;
    auto [fa, fb] = PairWithSegments(segs, 200 + segs, &expected);
    ASSERT_LE(chunk, fa.num_segments()) << SimdLevelName(level);
    CancellationToken token = CancellationToken::Create();
    token.Cancel();
    CancelContext cancel(token);

    bool stopped = false;
    (void)IntersectCountCancellable(fa, fb, cancel, level, &stopped);
    EXPECT_TRUE(stopped) << SimdLevelName(level);
    std::vector<uint32_t> out;
    stopped = false;
    (void)IntersectIntoCancellable(fa, fb, &out, cancel, true, level,
                                   &stopped);
    EXPECT_TRUE(stopped) << SimdLevelName(level);
    for (size_t threads : {1, 3, 5}) {
      stopped = false;
      (void)IntersectCountParallel(fa, fb, threads, level, {}, cancel,
                                   &stopped);
      EXPECT_TRUE(stopped) << SimdLevelName(level) << " threads=" << threads;
      stopped = false;
      (void)IntersectIntoParallel(fa, fb, &out, threads, true, level, {},
                                  cancel, &stopped);
      EXPECT_TRUE(stopped) << SimdLevelName(level) << " threads=" << threads;
    }
  }
}

TEST(ParallelCancelTest, MidFlightCancelNeverTearsOutput) {
  // A watcher thread cancels while materializing calls run. The contract
  // allows either outcome, but never a torn one: a call that reports
  // !stopped must have produced the exact sorted intersection, and a
  // stopped call must still have returned (no hang, no crash).
  SetPair pair = PairWithSelectivity(60000, 60000, 0.1, 19);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  std::vector<uint32_t> expected;
  std::set_intersection(pair.a.begin(), pair.a.end(), pair.b.begin(),
                        pair.b.end(), std::back_inserter(expected));
  size_t stopped_calls = 0;
  for (int trial = 0; trial < 8; ++trial) {
    size_t threads = 2 + static_cast<size_t>(trial % 4);
    CancellationToken token = CancellationToken::Create();
    std::thread watcher([&] { token.Cancel(); });
    std::vector<uint32_t> out;
    bool stopped = false;
    size_t r = IntersectIntoParallel(fa, fb, &out, threads, true,
                                     SimdLevel::kAuto, {},
                                     CancelContext(token), &stopped);
    watcher.join();
    if (stopped) {
      ++stopped_calls;
    } else {
      ASSERT_EQ(r, expected.size()) << "trial=" << trial;
      EXPECT_EQ(out, expected) << "trial=" << trial;
    }
  }
  // Not asserted: how many trials stopped — that is a race by design.
  (void)stopped_calls;
}

TEST(ParallelDeathTest, MismatchedSegmentBitsFailsFast) {
  FesiaParams p8;
  p8.segment_bits = 8;
  FesiaParams p16;
  p16.segment_bits = 16;
  std::vector<uint32_t> v = {1, 2, 3, 4, 5};
  FesiaSet a = FesiaSet::Build(v, p8);
  FesiaSet b = FesiaSet::Build(v, p16);
  // The parallel paths route mismatched pairs to the serial backend, whose
  // precondition check aborts instead of computing a wrong segment range.
  EXPECT_DEATH((void)IntersectCountParallel(a, b, 4), "FESIA_CHECK");
  std::vector<uint32_t> out;
  EXPECT_DEATH((void)IntersectIntoParallel(a, b, &out, 4), "FESIA_CHECK");
}

// --- ThreadPool / ParallelFor unit tests -----------------------------------

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(0, 1000, 4, [&](size_t lo, size_t hi, size_t) {
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < 1000; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(5, 5, 4, [&](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, ReversedRangeIsNoop) {
  bool called = false;
  ParallelFor(9, 3, 4, [&](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, ZeroThreadsRunsSerially) {
  std::vector<int> hits(64, 0);
  ParallelFor(0, 64, 0, [&](size_t lo, size_t hi, size_t t) {
    EXPECT_EQ(t, 0u);
    for (size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ParallelForTest, SingleElementRange) {
  std::atomic<int> calls{0};
  size_t seen_lo = 99, seen_hi = 99;
  ParallelFor(7, 8, 8, [&](size_t lo, size_t hi, size_t) {
    seen_lo = lo;
    seen_hi = hi;
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_lo, 7u);
  EXPECT_EQ(seen_hi, 8u);
}

TEST(ParallelForTest, RunsOnCustomPool) {
  ThreadPool pool(2);
  Executor exec(&pool);
  std::vector<std::atomic<int>> hits(500);
  ParallelFor(
      0, 500, 4,
      [&](size_t lo, size_t hi, size_t) {
        for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      exec);
  for (size_t i = 0; i < 500; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, SharedPoolHandlesConcurrentCallers) {
  // Two threads issuing ParallelFor against the shared default pool must
  // not interfere (per-call completion tracking, not pool-wide Wait).
  std::vector<std::atomic<int>> hits(2000);
  auto run = [&](size_t base) {
    ParallelFor(base, base + 1000, 4, [&](size_t lo, size_t hi, size_t) {
      for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
  };
  std::thread other([&] { run(1000); });
  run(0);
  other.join();
  for (size_t i = 0; i < 2000; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, NestedCallsDoNotDeadlock) {
  // A ParallelFor issued from inside a pool worker degrades to serial
  // execution instead of deadlocking on its own exhausted pool.
  std::atomic<int> inner_hits{0};
  ParallelFor(0, 4, 4, [&](size_t, size_t, size_t) {
    ParallelFor(0, 8, 4,
                [&](size_t lo, size_t hi, size_t) {
                  inner_hits.fetch_add(static_cast<int>(hi - lo));
                });
  });
  EXPECT_EQ(inner_hits.load(), 4 * 8);
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace fesia
