// Cross-module integration: the full workloads the benchmarks run, at small
// scale, with exact result checks across every method and strategy.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/kway.h"
#include "baselines/registry.h"
#include "datagen/datagen.h"
#include "fesia/fesia.h"
#include "graph/generators.h"
#include "graph/triangle.h"
#include "index/inverted_index.h"
#include "index/query_engine.h"
#include "test_util.h"

namespace fesia {
namespace {

using ::fesia::datagen::PairWithSelectivity;
using ::fesia::datagen::SetPair;
using ::fesia::testing::AvailableLevels;

// The Fig. 7/8/9 harness shape: one pair, every method, equal answers.
TEST(IntegrationTest, AllMethodsAgreeOnSyntheticPair) {
  SetPair pair = PairWithSelectivity(30000, 30000, 0.01, 1);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  size_t expected = pair.intersection_size;
  for (const auto& m : baselines::AllBaselines()) {
    EXPECT_EQ(m.fn(pair.a.data(), pair.a.size(), pair.b.data(),
                   pair.b.size()),
              expected)
        << m.name;
  }
  for (SimdLevel level : AvailableLevels()) {
    EXPECT_EQ(IntersectCount(fa, fb, level), expected);
    EXPECT_EQ(IntersectCountHash(fa, fb, level), expected);
    EXPECT_EQ(IntersectCountAuto(fa, fb, level), expected);
    EXPECT_EQ(IntersectCountParallel(fa, fb, 4, level), expected);
  }
}

// The Fig. 11 harness shape: skew sweep, both FESIA strategies correct.
TEST(IntegrationTest, SkewSweepBothStrategies) {
  for (size_t n1 : {1000, 4000, 16000, 32000}) {
    SetPair pair = PairWithSelectivity(n1, 32000, 0.1, n1);
    FesiaSet fa = FesiaSet::Build(pair.a);
    FesiaSet fb = FesiaSet::Build(pair.b);
    EXPECT_EQ(IntersectCount(fa, fb), pair.intersection_size) << n1;
    EXPECT_EQ(IntersectCountHash(fa, fb), pair.intersection_size) << n1;
  }
}

// The Fig. 10 harness shape: 3-way intersection across implementations.
TEST(IntegrationTest, ThreeWayAllImplementationsAgree) {
  auto raw = datagen::KSetsWithDensity(3, 5000, 0.4, 21);
  size_t expected = datagen::ReferenceIntersection(raw).size();
  std::vector<FesiaSet> sets;
  for (const auto& r : raw) sets.push_back(FesiaSet::Build(r));
  std::vector<const FesiaSet*> ptrs = {&sets[0], &sets[1], &sets[2]};
  EXPECT_EQ(IntersectCountKWay(ptrs), expected);
  std::vector<baselines::SetView> views;
  for (const auto& r : raw) views.push_back({r.data(), r.size()});
  EXPECT_EQ(baselines::KWayMerge(views), expected);
  EXPECT_EQ(baselines::KWayGalloping(views), expected);
  EXPECT_EQ(baselines::KWayShuffling(views), expected);
}

// The Fig. 12 harness shape: database AND queries, FESIA vs every baseline.
TEST(IntegrationTest, DatabaseQueryTaskAgreement) {
  index::CorpusParams cp;
  cp.num_docs = 30000;
  cp.num_terms = 1500;
  cp.avg_terms_per_doc = 25;
  index::InvertedIndex idx = index::InvertedIndex::BuildSynthetic(cp);
  index::QueryEngine engine(&idx, FesiaParams{});
  auto mids = idx.TermsWithPostingLength(200, 2000);
  ASSERT_GE(mids.size(), 3u);
  std::vector<uint32_t> q2 = {mids[0], mids[1]};
  std::vector<uint32_t> q3 = {mids[0], mids[1], mids[2]};
  size_t expected2 = engine.CountBaseline(q2, "Scalar");
  size_t expected3 = engine.CountBaseline(q3, "Scalar");
  EXPECT_EQ(engine.CountFesia(q2), expected2);
  EXPECT_EQ(engine.CountFesia(q3), expected3);
  for (const char* m : {"Shuffling", "BMiss", "SIMDGalloping"}) {
    EXPECT_EQ(engine.CountBaseline(q2, m), expected2) << m;
    EXPECT_EQ(engine.CountBaseline(q3, m), expected3) << m;
  }
}

// The Fig. 13 harness shape: triangle counting, FESIA vs Shuffling vs Scalar.
TEST(IntegrationTest, TriangleCountingTaskAgreement) {
  graph::RmatParams rp;
  rp.num_nodes = 1 << 11;
  rp.num_edges = 16 << 11;
  graph::Graph dag = graph::GenerateRmatGraph(rp).DegreeOrientedDag();
  uint64_t expected = graph::CountTriangles(
      dag, baselines::FindBaseline("Scalar")->fn);
  ASSERT_GT(expected, 0u);
  EXPECT_EQ(graph::CountTriangles(
                dag, baselines::FindBaseline("Shuffling")->fn),
            expected);
  graph::FesiaTriangleCounter counter(&dag, FesiaParams{});
  EXPECT_EQ(counter.Count(), expected);
  EXPECT_EQ(counter.Count(SimdLevel::kAuto, 4), expected);
}

// The Table II harness shape: stride sub-sampling preserves results while
// changing only which kernels execute.
TEST(IntegrationTest, StrideSubsamplingPreservesResults) {
  SetPair pair = PairWithSelectivity(20000, 20000, 0.05, 33);
  size_t expected = pair.intersection_size;
  for (int stride : {1, 2, 4, 8}) {
    FesiaParams p;
    p.kernel_stride = stride;
    FesiaSet fa = FesiaSet::Build(pair.a, p);
    FesiaSet fb = FesiaSet::Build(pair.b, p);
    EXPECT_EQ(IntersectCount(fa, fb), expected) << "stride=" << stride;
  }
}

// The Fig. 14 harness shape: breakdown responds to m and s as the paper
// describes (smaller s -> more segments -> step 1 grows).
TEST(IntegrationTest, BreakdownRespondsToSegmentWidth) {
  SetPair pair = PairWithSelectivity(50000, 50000, 0.0, 44);
  FesiaParams p8;
  p8.segment_bits = 8;
  FesiaParams p32;
  p32.segment_bits = 32;
  FesiaSet a8 = FesiaSet::Build(pair.a, p8);
  FesiaSet b8 = FesiaSet::Build(pair.b, p8);
  FesiaSet a32 = FesiaSet::Build(pair.a, p32);
  FesiaSet b32 = FesiaSet::Build(pair.b, p32);
  IntersectBreakdown bd8, bd32;
  EXPECT_EQ(IntersectCountInstrumented(a8, b8, &bd8), 0u);
  EXPECT_EQ(IntersectCountInstrumented(a32, b32, &bd32), 0u);
  // Same bitmap size; narrower segments produce at least as many matched
  // segment pairs (a 32-bit segment merges four 8-bit ones).
  EXPECT_GE(bd32.matched_segments, bd8.matched_segments / 8);
}

}  // namespace
}  // namespace fesia
