// Seed-parameterized randomized property suites. Each TEST_P instance runs
// one seed of a generator sweep; together they cover the parameter space
// (sizes, selectivities, segment widths, strides, ISA levels, arities) far
// beyond the hand-picked cases in the per-module tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baselines/hiera.h"
#include "baselines/registry.h"
#include "datagen/datagen.h"
#include "fesia/fesia.h"
#include "test_util.h"

namespace fesia {
namespace {

using ::fesia::datagen::KSetsWithDensity;
using ::fesia::datagen::PairWithSelectivity;
using ::fesia::datagen::ReferenceIntersection;
using ::fesia::datagen::ReferenceIntersectionSize;
using ::fesia::datagen::SetPair;
using ::fesia::testing::AvailableLevels;

class SeededFuzz : public ::testing::TestWithParam<uint64_t> {
 protected:
  Rng rng_{GetParam() * 0x9E3779B97F4A7C15ull + 1};

  FesiaParams RandomParams() {
    FesiaParams p;
    const int seg_choices[] = {8, 16, 32};
    const int stride_choices[] = {1, 2, 4, 8};
    p.segment_bits = seg_choices[rng_.Below(3)];
    p.kernel_stride = stride_choices[rng_.Below(4)];
    // Scales from degenerate (huge segments) to oversized bitmaps.
    p.bitmap_scale = 0.25 * static_cast<double>(1 + rng_.Below(200));
    return p;
  }
};

TEST_P(SeededFuzz, PairwiseAgainstReferenceRandomEverything) {
  for (int iter = 0; iter < 8; ++iter) {
    size_t n1 = 1 + rng_.Below(5000);
    size_t n2 = 1 + rng_.Below(5000);
    double sel = rng_.NextDouble();
    SetPair pair = PairWithSelectivity(n1, n2, sel, rng_.Next64());
    FesiaParams pa = RandomParams();
    FesiaParams pb = RandomParams();
    pb.segment_bits = pa.segment_bits;  // pipeline requires matching s
    FesiaSet fa = FesiaSet::Build(pair.a, pa);
    FesiaSet fb = FesiaSet::Build(pair.b, pb);
    size_t expected = pair.intersection_size;
    for (SimdLevel level : AvailableLevels()) {
      ASSERT_EQ(IntersectCount(fa, fb, level), expected)
          << "iter=" << iter << " level=" << SimdLevelName(level)
          << " n1=" << n1 << " n2=" << n2 << " s=" << pa.segment_bits
          << " strideA=" << pa.kernel_stride
          << " strideB=" << pb.kernel_stride << " scaleA=" << pa.bitmap_scale
          << " scaleB=" << pb.bitmap_scale;
    }
  }
}

TEST_P(SeededFuzz, HashStrategyAgainstReference) {
  for (int iter = 0; iter < 8; ++iter) {
    size_t n1 = 1 + rng_.Below(500);
    size_t n2 = 1 + rng_.Below(20000);
    SetPair pair = PairWithSelectivity(n1, n2, rng_.NextDouble(),
                                       rng_.Next64());
    FesiaSet fa = FesiaSet::Build(pair.a, RandomParams());
    FesiaSet fb = FesiaSet::Build(pair.b, RandomParams());
    ASSERT_EQ(IntersectCountHash(fa, fb), pair.intersection_size)
        << "iter=" << iter;
  }
}

TEST_P(SeededFuzz, MaterializeMatchesReferenceElements) {
  for (int iter = 0; iter < 4; ++iter) {
    SetPair pair = PairWithSelectivity(1 + rng_.Below(3000),
                                       1 + rng_.Below(3000),
                                       rng_.NextDouble(), rng_.Next64());
    FesiaParams p = RandomParams();
    FesiaSet fa = FesiaSet::Build(pair.a, p);
    FesiaSet fb = FesiaSet::Build(pair.b, p);
    std::vector<uint32_t> expected;
    std::set_intersection(pair.a.begin(), pair.a.end(), pair.b.begin(),
                          pair.b.end(), std::back_inserter(expected));
    for (SimdLevel level : AvailableLevels()) {
      std::vector<uint32_t> out;
      IntersectInto(fa, fb, &out, /*sort_output=*/true, level);
      ASSERT_EQ(out, expected)
          << "iter=" << iter << " level=" << SimdLevelName(level);
    }
  }
}

TEST_P(SeededFuzz, KWayAgainstReference) {
  for (int iter = 0; iter < 4; ++iter) {
    size_t k = 2 + rng_.Below(4);
    size_t n = 100 + rng_.Below(3000);
    double density = 0.05 + 0.9 * rng_.NextDouble();
    auto raw = KSetsWithDensity(k, n, density, rng_.Next64());
    size_t expected = ReferenceIntersection(raw).size();
    FesiaParams p = RandomParams();
    std::vector<FesiaSet> sets;
    for (const auto& r : raw) sets.push_back(FesiaSet::Build(r, p));
    std::vector<const FesiaSet*> ptrs;
    for (const auto& s : sets) ptrs.push_back(&s);
    ASSERT_EQ(IntersectCountKWay(ptrs), expected)
        << "iter=" << iter << " k=" << k << " density=" << density;
  }
}

TEST_P(SeededFuzz, ParallelAgreesWithSequential) {
  SetPair pair = PairWithSelectivity(1 + rng_.Below(30000),
                                     1 + rng_.Below(30000),
                                     rng_.NextDouble(), rng_.Next64());
  FesiaParams p = RandomParams();
  FesiaSet fa = FesiaSet::Build(pair.a, p);
  FesiaSet fb = FesiaSet::Build(pair.b, p);
  size_t expected = IntersectCount(fa, fb);
  ASSERT_EQ(expected, pair.intersection_size);
  for (size_t threads : {2, 3, 5, 8}) {
    ASSERT_EQ(IntersectCountParallel(fa, fb, threads), expected)
        << "threads=" << threads;
  }
}

TEST_P(SeededFuzz, BaselinesAgreeWithEachOther) {
  SetPair pair = PairWithSelectivity(1 + rng_.Below(8000),
                                     1 + rng_.Below(8000),
                                     rng_.NextDouble(), rng_.Next64());
  size_t expected = pair.intersection_size;
  for (const auto& m : baselines::AllBaselines()) {
    ASSERT_EQ(m.fn(pair.a.data(), pair.a.size(), pair.b.data(),
                   pair.b.size()),
              expected)
        << m.name;
  }
  ASSERT_EQ(baselines::HieraOneShot(pair.a.data(), pair.a.size(),
                                    pair.b.data(), pair.b.size()),
            expected);
}

TEST_P(SeededFuzz, SerializeRoundTripRandomShapes) {
  FesiaParams p = RandomParams();
  std::vector<uint32_t> v = datagen::SortedUniform(
      rng_.Below(4000), 1 + rng_.Below(1u << 26), rng_.Next64());
  FesiaSet set = FesiaSet::Build(v, p);
  FesiaSet restored;
  ASSERT_TRUE(FesiaSet::Deserialize(set.Serialize(), &restored).ok());
  ASSERT_EQ(restored.ToSortedVector(), v);
  ASSERT_EQ(restored.bitmap_bits(), set.bitmap_bits());
}

TEST_P(SeededFuzz, SerializeRejectsRandomCorruption) {
  std::vector<uint32_t> v = datagen::SortedUniform(500, 1u << 20, GetParam());
  FesiaSet set = FesiaSet::Build(v);
  std::vector<uint8_t> bytes = set.Serialize();
  for (int iter = 0; iter < 16; ++iter) {
    std::vector<uint8_t> corrupt = bytes;
    size_t pos = rng_.Below(corrupt.size());
    corrupt[pos] ^= static_cast<uint8_t>(1 + rng_.Below(255));
    FesiaSet out;
    // The v2 CRC32C footer detects every single-byte error, so any flip
    // must yield a clean non-OK Status — never a crash, never acceptance.
    Status s = FesiaSet::Deserialize(corrupt, &out);
    ASSERT_FALSE(s.ok()) << "iter=" << iter << " pos=" << pos;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededFuzz, ::testing::Range<uint64_t>(1, 9),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace fesia
