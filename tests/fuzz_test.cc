// Seed-parameterized randomized property suites. Each TEST_P instance runs
// one seed of a generator sweep; together they cover the parameter space
// (sizes, selectivities, segment widths, strides, ISA levels, arities) far
// beyond the hand-picked cases in the per-module tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/hiera.h"
#include "baselines/registry.h"
#include "datagen/datagen.h"
#include "fesia/fesia.h"
#include "index/inverted_index.h"
#include "index/query_engine.h"
#include "index/query_gen.h"
#include "store/index_manager.h"
#include "store/snapshot_store.h"
#include "test_util.h"
#include "util/fault_injection.h"

namespace fesia {
namespace {

using ::fesia::datagen::KSetsWithDensity;
using ::fesia::datagen::PairWithSelectivity;
using ::fesia::datagen::ReferenceIntersection;
using ::fesia::datagen::ReferenceIntersectionSize;
using ::fesia::datagen::SetPair;
using ::fesia::testing::AvailableLevels;

class SeededFuzz : public ::testing::TestWithParam<uint64_t> {
 protected:
  Rng rng_{GetParam() * 0x9E3779B97F4A7C15ull + 1};

  FesiaParams RandomParams() {
    FesiaParams p;
    const int seg_choices[] = {8, 16, 32};
    const int stride_choices[] = {1, 2, 4, 8};
    p.segment_bits = seg_choices[rng_.Below(3)];
    p.kernel_stride = stride_choices[rng_.Below(4)];
    // Scales from degenerate (huge segments) to oversized bitmaps.
    p.bitmap_scale = 0.25 * static_cast<double>(1 + rng_.Below(200));
    return p;
  }
};

TEST_P(SeededFuzz, PairwiseAgainstReferenceRandomEverything) {
  for (int iter = 0; iter < 8; ++iter) {
    size_t n1 = 1 + rng_.Below(5000);
    size_t n2 = 1 + rng_.Below(5000);
    double sel = rng_.NextDouble();
    SetPair pair = PairWithSelectivity(n1, n2, sel, rng_.Next64());
    FesiaParams pa = RandomParams();
    FesiaParams pb = RandomParams();
    pb.segment_bits = pa.segment_bits;  // pipeline requires matching s
    FesiaSet fa = FesiaSet::Build(pair.a, pa);
    FesiaSet fb = FesiaSet::Build(pair.b, pb);
    size_t expected = pair.intersection_size;
    for (SimdLevel level : AvailableLevels()) {
      ASSERT_EQ(IntersectCount(fa, fb, level), expected)
          << "iter=" << iter << " level=" << SimdLevelName(level)
          << " n1=" << n1 << " n2=" << n2 << " s=" << pa.segment_bits
          << " strideA=" << pa.kernel_stride
          << " strideB=" << pb.kernel_stride << " scaleA=" << pa.bitmap_scale
          << " scaleB=" << pb.bitmap_scale;
    }
  }
}

TEST_P(SeededFuzz, HashStrategyAgainstReference) {
  for (int iter = 0; iter < 8; ++iter) {
    size_t n1 = 1 + rng_.Below(500);
    size_t n2 = 1 + rng_.Below(20000);
    SetPair pair = PairWithSelectivity(n1, n2, rng_.NextDouble(),
                                       rng_.Next64());
    FesiaSet fa = FesiaSet::Build(pair.a, RandomParams());
    FesiaSet fb = FesiaSet::Build(pair.b, RandomParams());
    ASSERT_EQ(IntersectCountHash(fa, fb), pair.intersection_size)
        << "iter=" << iter;
  }
}

TEST_P(SeededFuzz, MaterializeMatchesReferenceElements) {
  for (int iter = 0; iter < 4; ++iter) {
    SetPair pair = PairWithSelectivity(1 + rng_.Below(3000),
                                       1 + rng_.Below(3000),
                                       rng_.NextDouble(), rng_.Next64());
    FesiaParams p = RandomParams();
    FesiaSet fa = FesiaSet::Build(pair.a, p);
    FesiaSet fb = FesiaSet::Build(pair.b, p);
    std::vector<uint32_t> expected;
    std::set_intersection(pair.a.begin(), pair.a.end(), pair.b.begin(),
                          pair.b.end(), std::back_inserter(expected));
    for (SimdLevel level : AvailableLevels()) {
      std::vector<uint32_t> out;
      IntersectInto(fa, fb, &out, /*sort_output=*/true, level);
      ASSERT_EQ(out, expected)
          << "iter=" << iter << " level=" << SimdLevelName(level);
    }
  }
}

TEST_P(SeededFuzz, KWayAgainstReference) {
  for (int iter = 0; iter < 4; ++iter) {
    size_t k = 2 + rng_.Below(4);
    size_t n = 100 + rng_.Below(3000);
    double density = 0.05 + 0.9 * rng_.NextDouble();
    auto raw = KSetsWithDensity(k, n, density, rng_.Next64());
    size_t expected = ReferenceIntersection(raw).size();
    FesiaParams p = RandomParams();
    std::vector<FesiaSet> sets;
    for (const auto& r : raw) sets.push_back(FesiaSet::Build(r, p));
    std::vector<const FesiaSet*> ptrs;
    for (const auto& s : sets) ptrs.push_back(&s);
    ASSERT_EQ(IntersectCountKWay(ptrs), expected)
        << "iter=" << iter << " k=" << k << " density=" << density;
  }
}

TEST_P(SeededFuzz, ParallelAgreesWithSequential) {
  SetPair pair = PairWithSelectivity(1 + rng_.Below(30000),
                                     1 + rng_.Below(30000),
                                     rng_.NextDouble(), rng_.Next64());
  FesiaParams p = RandomParams();
  FesiaSet fa = FesiaSet::Build(pair.a, p);
  FesiaSet fb = FesiaSet::Build(pair.b, p);
  size_t expected = IntersectCount(fa, fb);
  ASSERT_EQ(expected, pair.intersection_size);
  for (size_t threads : {2, 3, 5, 8}) {
    ASSERT_EQ(IntersectCountParallel(fa, fb, threads), expected)
        << "threads=" << threads;
  }
}

TEST_P(SeededFuzz, BaselinesAgreeWithEachOther) {
  SetPair pair = PairWithSelectivity(1 + rng_.Below(8000),
                                     1 + rng_.Below(8000),
                                     rng_.NextDouble(), rng_.Next64());
  size_t expected = pair.intersection_size;
  for (const auto& m : baselines::AllBaselines()) {
    ASSERT_EQ(m.fn(pair.a.data(), pair.a.size(), pair.b.data(),
                   pair.b.size()),
              expected)
        << m.name;
  }
  ASSERT_EQ(baselines::HieraOneShot(pair.a.data(), pair.a.size(),
                                    pair.b.data(), pair.b.size()),
            expected);
}

TEST_P(SeededFuzz, SerializeRoundTripRandomShapes) {
  FesiaParams p = RandomParams();
  std::vector<uint32_t> v = datagen::SortedUniform(
      rng_.Below(4000), 1 + rng_.Below(1u << 26), rng_.Next64());
  FesiaSet set = FesiaSet::Build(v, p);
  FesiaSet restored;
  ASSERT_TRUE(FesiaSet::Deserialize(set.Serialize(), &restored).ok());
  ASSERT_EQ(restored.ToSortedVector(), v);
  ASSERT_EQ(restored.bitmap_bits(), set.bitmap_bits());
}

TEST_P(SeededFuzz, SerializeRejectsRandomCorruption) {
  std::vector<uint32_t> v = datagen::SortedUniform(500, 1u << 20, GetParam());
  FesiaSet set = FesiaSet::Build(v);
  std::vector<uint8_t> bytes = set.Serialize();
  for (int iter = 0; iter < 16; ++iter) {
    std::vector<uint8_t> corrupt = bytes;
    size_t pos = rng_.Below(corrupt.size());
    corrupt[pos] ^= static_cast<uint8_t>(1 + rng_.Below(255));
    FesiaSet out;
    // The v2 CRC32C footer detects every single-byte error, so any flip
    // must yield a clean non-OK Status — never a crash, never acceptance.
    Status s = FesiaSet::Deserialize(corrupt, &out);
    ASSERT_FALSE(s.ok()) << "iter=" << iter << " pos=" << pos;
  }
}

TEST_P(SeededFuzz, BatchExecutorUnderRandomOverloadPolicies) {
  // Random deadlines, admission caps, retry budgets, and injected faults:
  // whatever the policy mix, a query the executor reports OK must count
  // exactly what a serial CountFesia counts, and the outcome accounting
  // must balance. Queries deliberately include out-of-range term ids.
  index::CorpusParams cp;
  cp.num_docs = 8000 + static_cast<uint32_t>(rng_.Below(20000));
  cp.num_terms = 200 + static_cast<uint32_t>(rng_.Below(800));
  cp.avg_terms_per_doc = 15;
  cp.seed = GetParam() * 31 + 7;
  index::InvertedIndex idx = index::InvertedIndex::BuildSynthetic(cp);
  index::QueryEngine engine(&idx, RandomParams());

  for (int iter = 0; iter < 4; ++iter) {
    std::vector<index::Query> queries;
    const size_t batch_size = 1 + rng_.Below(40);
    for (size_t q = 0; q < batch_size; ++q) {
      index::Query query;
      const size_t arity = rng_.Below(5);  // includes empty queries
      for (size_t t = 0; t < arity; ++t) {
        // ~1 in 16 terms is out of range and must yield an empty (count 0)
        // OK result, not UB.
        query.push_back(rng_.NextBool(1.0 / 16)
                            ? idx.num_terms() + static_cast<uint32_t>(
                                                    rng_.Below(100))
                            : static_cast<uint32_t>(
                                  rng_.Below(idx.num_terms())));
      }
      queries.push_back(std::move(query));
    }

    index::BatchOptions opts;
    opts.num_threads = rng_.Below(5);
    if (rng_.NextBool(0.5)) {
      // Deadlines from "instantly expired" to "comfortably generous".
      opts.query_deadline_seconds = rng_.NextBool(0.3)
                                        ? 1e-9
                                        : 0.001 * (1 + rng_.Below(50));
    }
    if (rng_.NextBool(0.3)) opts.batch_deadline_seconds = 0.002;
    if (rng_.NextBool(0.5)) opts.admission_capacity = 1 + rng_.Below(4);
    opts.retry.max_attempts = 1 + static_cast<int>(rng_.Below(3));
    opts.retry.initial_backoff_seconds = 1e-5;
    opts.intra_query_threads = 1 + rng_.Below(3);
    if (rng_.NextBool(0.3)) {
      fault::Arm(fault::FaultPoint::kAllocation, rng_.Below(6));
    }
    if (rng_.NextBool(0.3)) {
      fault::Arm(fault::FaultPoint::kQueryDelay, rng_.Below(6),
                 /*param=*/rng_.Below(3000));
    }

    index::BatchStats stats;
    std::vector<index::QueryResult> results =
        engine.CountBatch(queries, opts, &stats);
    fault::DisarmAll();

    ASSERT_EQ(results.size(), queries.size());
    ASSERT_EQ(stats.ok + stats.deadline_exceeded + stats.shed + stats.failed,
              queries.size())
        << "iter=" << iter;
    for (size_t q = 0; q < queries.size(); ++q) {
      const index::QueryResult& r = results[q];
      if (r.ok()) {
        ASSERT_EQ(r.count, engine.CountFesia(queries[q]))
            << "iter=" << iter << " query=" << q;
      } else {
        ASSERT_FALSE(r.status.ok()) << "iter=" << iter << " query=" << q;
        ASSERT_EQ(r.count, 0u) << "iter=" << iter << " query=" << q;
      }
      ASSERT_LE(r.attempts, opts.retry.max_attempts);
    }
    ASSERT_EQ(engine.InFlightQueries(), 0u) << "iter=" << iter;
  }
}

// Randomized interleavings of the live-mutation lifecycle: upserts,
// deletes, merges (some dying at an injected fault boundary), and full
// crash-restarts, with the serving answers checked against a from-scratch
// rebuild of the acknowledged-mutation model at random points. The model
// only advances on an acknowledged (OK) mutation, so any divergence means
// either an acknowledged write was lost or an unacknowledged one leaked in.
TEST_P(SeededFuzz, MutationInterleavingsMatchFullRebuild) {
  namespace fs = std::filesystem;
  index::CorpusParams cp;
  cp.num_docs = 500;
  cp.num_terms = 40;
  cp.avg_terms_per_doc = 12.0;
  cp.seed = GetParam();
  const index::InvertedIndex idx = index::InvertedIndex::BuildSynthetic(cp);

  std::map<uint32_t, std::vector<uint32_t>> model;
  for (uint32_t t = 0; t < idx.num_terms(); ++t) {
    for (uint32_t d : idx.Postings(t)) model[d].push_back(t);
  }

  std::vector<std::vector<uint32_t>> queries;
  for (uint32_t t = 0; t + 1 < idx.num_terms(); t += 7) {
    queries.push_back({t, t + 1});
  }

  const std::string dir = ::testing::TempDir() + "fesia_fuzz_mutation.seed" +
                          std::to_string(GetParam());
  fs::remove_all(dir);
  auto open_store = [&]() -> std::unique_ptr<store::SnapshotStore> {
    store::SnapshotStoreOptions opts;
    opts.dir = dir;
    auto opened = store::SnapshotStore::Open(opts);
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    if (!opened.ok()) return nullptr;
    return std::make_unique<store::SnapshotStore>(*std::move(opened));
  };
  std::unique_ptr<store::SnapshotStore> snapshots = open_store();
  ASSERT_NE(snapshots, nullptr);
  auto mgr = std::make_unique<store::IndexManager>(&idx, snapshots.get());
  ASSERT_TRUE(mgr->Rebuild().ok());
  ASSERT_TRUE(mgr->SaveSnapshot().ok());
  ASSERT_TRUE(mgr->OpenMutationLog().ok());

  auto verify = [&](int op) {
    std::vector<std::vector<uint32_t>> postings(idx.num_terms());
    for (const auto& [doc, terms] : model) {
      for (uint32_t t : terms) postings[t].push_back(doc);
    }
    index::InvertedIndex ref_idx =
        index::InvertedIndex::FromPostings(idx.num_docs(),
                                           std::move(postings));
    index::QueryEngine ref(&ref_idx, FesiaParams{});
    index::BatchOptions opts;
    opts.num_threads = 1;
    std::vector<index::QueryResult> expected = ref.QueryBatch(queries, opts);
    std::vector<index::QueryResult> actual = mgr->QueryBatch(queries, opts);
    ASSERT_EQ(actual.size(), expected.size()) << "op=" << op;
    for (size_t q = 0; q < expected.size(); ++q) {
      ASSERT_TRUE(actual[q].ok()) << "op=" << op << " query=" << q;
      ASSERT_EQ(actual[q].count, expected[q].count)
          << "op=" << op << " query=" << q;
      ASSERT_EQ(actual[q].docs, expected[q].docs)
          << "op=" << op << " query=" << q;
    }
  };

  auto random_terms = [&] {
    std::vector<uint32_t> terms;
    const size_t n = rng_.Below(9);
    for (size_t i = 0; i < n; ++i) {
      terms.push_back(static_cast<uint32_t>(rng_.Below(idx.num_terms())));
    }
    std::sort(terms.begin(), terms.end());
    terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
    return terms;
  };

  const fault::FaultPoint crash_points[] = {
      fault::FaultPoint::kIoShortWrite,
      fault::FaultPoint::kCrashBeforeRename,
      fault::FaultPoint::kCrashAfterRename,
      fault::FaultPoint::kWalAppendShortWrite,
      fault::FaultPoint::kCrashBeforeWalTruncate,
  };

  for (int op = 0; op < 60; ++op) {
    const uint64_t pick = rng_.Below(100);
    if (pick < 40) {
      const uint32_t doc = static_cast<uint32_t>(rng_.Below(idx.num_docs()));
      std::vector<uint32_t> terms = random_terms();
      if (mgr->Upsert(doc, terms).ok()) model[doc] = std::move(terms);
    } else if (pick < 55) {
      const uint32_t doc = static_cast<uint32_t>(rng_.Below(idx.num_docs()));
      if (mgr->Delete(doc).ok()) model.erase(doc);
    } else if (pick < 70) {
      // Merge, sometimes dying at a random fault boundary. Either way the
      // overlay/merged state must keep answering for the model.
      if (rng_.NextBool(0.4)) {
        fault::Arm(crash_points[rng_.Below(5)],
                   static_cast<int>(rng_.Below(2)));
      }
      (void)mgr->FlushDelta();
      fault::DisarmAll();
    } else if (pick < 82) {
      // Crash-restart, sometimes preceded by a torn (unacknowledged)
      // append that replay must cut away.
      if (rng_.NextBool(0.5)) {
        fault::Arm(fault::FaultPoint::kWalAppendShortWrite);
        const uint32_t doc =
            static_cast<uint32_t>(rng_.Below(idx.num_docs()));
        std::vector<uint32_t> terms = random_terms();
        if (mgr->Upsert(doc, terms).ok()) model[doc] = std::move(terms);
        fault::DisarmAll();
      }
      mgr.reset();
      snapshots = open_store();
      ASSERT_NE(snapshots, nullptr);
      mgr = std::make_unique<store::IndexManager>(&idx, snapshots.get());
      ASSERT_TRUE(mgr->Reload().ok());
      ASSERT_TRUE(mgr->OpenMutationLog().ok());
    } else {
      verify(op);
    }
  }
  fault::DisarmAll();
  verify(-1);
  mgr.reset();
  snapshots.reset();
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededFuzz, ::testing::Range<uint64_t>(1, 9),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace fesia
