// Unit tests for the util substrate.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include <span>
#include <stdexcept>
#include <string>

#include "util/aligned_buffer.h"
#include "util/bits.h"
#include "util/byte_io.h"
#include "util/check.h"
#include "util/cpu.h"
#include "util/crc32c.h"
#include "util/perf_counters.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace fesia {
namespace {

// --- bits -------------------------------------------------------------------

TEST(BitsTest, RoundUpPow2) {
  EXPECT_EQ(RoundUpPow2(0), 1u);
  EXPECT_EQ(RoundUpPow2(1), 1u);
  EXPECT_EQ(RoundUpPow2(2), 2u);
  EXPECT_EQ(RoundUpPow2(3), 4u);
  EXPECT_EQ(RoundUpPow2(4), 4u);
  EXPECT_EQ(RoundUpPow2(5), 8u);
  EXPECT_EQ(RoundUpPow2(1023), 1024u);
  EXPECT_EQ(RoundUpPow2(1024), 1024u);
  EXPECT_EQ(RoundUpPow2((1ull << 40) + 1), 1ull << 41);
}

TEST(BitsTest, IsPow2) {
  EXPECT_FALSE(IsPow2(0));
  EXPECT_TRUE(IsPow2(1));
  EXPECT_TRUE(IsPow2(2));
  EXPECT_FALSE(IsPow2(3));
  EXPECT_TRUE(IsPow2(1ull << 63));
  EXPECT_FALSE(IsPow2((1ull << 63) + 1));
}

TEST(BitsTest, Log2Pow2) {
  EXPECT_EQ(Log2Pow2(1), 0);
  EXPECT_EQ(Log2Pow2(2), 1);
  EXPECT_EQ(Log2Pow2(1024), 10);
  EXPECT_EQ(Log2Pow2(1ull << 50), 50);
}

TEST(BitsTest, CountTrailingZeros64) {
  EXPECT_EQ(CountTrailingZeros64(0), 64);
  EXPECT_EQ(CountTrailingZeros64(1), 0);
  EXPECT_EQ(CountTrailingZeros64(8), 3);
  EXPECT_EQ(CountTrailingZeros64(1ull << 63), 63);
}

TEST(BitsTest, ClearLowestBitWalksSetBits) {
  uint64_t v = 0b1011000;
  std::vector<int> positions;
  while (v) {
    positions.push_back(CountTrailingZeros64(v));
    v = ClearLowestBit(v);
  }
  EXPECT_EQ(positions, (std::vector<int>{3, 4, 6}));
}

TEST(BitsTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 4), 0u);
  EXPECT_EQ(CeilDiv(1, 4), 1u);
  EXPECT_EQ(CeilDiv(4, 4), 1u);
  EXPECT_EQ(CeilDiv(5, 4), 2u);
}

// --- AlignedBuffer -----------------------------------------------------------

TEST(AlignedBufferTest, AlignmentAndZeroInit) {
  AlignedBuffer<uint32_t> buf(100);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % kVectorAlignment, 0u);
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_GT(buf.padded_size(), 100u);
  for (size_t i = 0; i < buf.padded_size(); ++i) EXPECT_EQ(buf[i], 0u);
}

TEST(AlignedBufferTest, CopySemantics) {
  AlignedBuffer<uint32_t> a(10);
  for (size_t i = 0; i < 10; ++i) a[i] = static_cast<uint32_t>(i * i);
  AlignedBuffer<uint32_t> b = a;
  EXPECT_EQ(b.size(), 10u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(b[i], i * i);
  b[0] = 999;
  EXPECT_EQ(a[0], 0u);  // deep copy
}

TEST(AlignedBufferTest, MoveSemantics) {
  AlignedBuffer<uint64_t> a(5);
  a[3] = 7;
  const uint64_t* p = a.data();
  AlignedBuffer<uint64_t> b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[3], 7u);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move)
}

TEST(AlignedBufferTest, EmptyBuffer) {
  AlignedBuffer<uint32_t> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, BelowCoversRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(77);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, RoughlyUniform) {
  Rng rng(31);
  int buckets[10] = {0};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.Below(10)];
  for (int b = 0; b < 10; ++b) {
    EXPECT_NEAR(buckets[b], kDraws / 10, kDraws / 100) << "bucket " << b;
  }
}

TEST(RngTest, InRangeInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.InRange(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextBoolTracksProbability) {
  Rng rng(17);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

// --- perf counters -----------------------------------------------------------

// Hardware counters may be denied (containers, perf_event_paranoid); the
// wrapper must degrade gracefully either way.
TEST(PerfCounterTest, GracefulWhetherGrantedOrDenied) {
  PerfCounter counter(PerfEvent::kInstructions);
  counter.Start();
  volatile uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<uint64_t>(i);
  counter.Stop();
  if (counter.ok()) {
    EXPECT_GT(counter.value(), 0u);
  } else {
    EXPECT_EQ(counter.value(), 0u);  // denied: value stays zero, no crash
  }
}

TEST(PerfCounterTest, EventNames) {
  EXPECT_STREQ(PerfEventName(PerfEvent::kL1IcacheMisses),
               "L1-icache-misses");
  EXPECT_STREQ(PerfEventName(PerfEvent::kInstructions), "instructions");
  EXPECT_STREQ(PerfEventName(PerfEvent::kCycles), "cycles");
  EXPECT_STREQ(PerfEventName(PerfEvent::kBranchMisses), "branch-misses");
  EXPECT_STREQ(PerfEventName(PerfEvent::kL1DcacheMisses),
               "L1-dcache-misses");
}

TEST(PerfCounterTest, StartStopReusable) {
  PerfCounter counter(PerfEvent::kCycles);
  for (int round = 0; round < 3; ++round) {
    counter.Start();
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i) x += i;
    counter.Stop();
  }
  SUCCEED();
}

// --- stats -------------------------------------------------------------------

TEST(StatsTest, SummarizeBasics) {
  SampleStats s = Summarize({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  EXPECT_DOUBLE_EQ(s.median, 3);
  EXPECT_EQ(s.count, 5u);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
}

TEST(StatsTest, EvenCountMedian) {
  SampleStats s = Summarize({1, 2, 3, 10});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(StatsTest, EmptyInput) {
  SampleStats s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0);
}

TEST(StatsTest, Quantiles) {
  std::vector<double> v = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 10);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 30);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 50);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 20);
}

// --- cpu ---------------------------------------------------------------------

TEST(CpuTest, DetectedLevelIsStable) {
  EXPECT_EQ(DetectSimdLevel(), DetectSimdLevel());
}

TEST(CpuTest, ResolveClampsToDetected) {
  SimdLevel max = DetectSimdLevel();
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kAuto), max);
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kScalar), SimdLevel::kScalar);
  SimdLevel r = ResolveSimdLevel(SimdLevel::kAvx512);
  EXPECT_LE(static_cast<int>(r), static_cast<int>(max));
}

TEST(CpuTest, WidthsAndLanes) {
  EXPECT_EQ(SimdWidthBits(SimdLevel::kScalar), 64);
  EXPECT_EQ(SimdWidthBits(SimdLevel::kSse), 128);
  EXPECT_EQ(SimdWidthBits(SimdLevel::kAvx2), 256);
  EXPECT_EQ(SimdWidthBits(SimdLevel::kAvx512), 512);
  EXPECT_EQ(SimdLanes32(SimdLevel::kSse), 4);
  EXPECT_EQ(SimdLanes32(SimdLevel::kAvx2), 8);
  EXPECT_EQ(SimdLanes32(SimdLevel::kAvx512), 16);
}

TEST(CpuTest, Names) {
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kSse), "sse");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx512), "avx512");
}

// --- timer -------------------------------------------------------------------

TEST(TimerTest, TscMonotonic) {
  uint64_t a = ReadTsc();
  uint64_t b = ReadTsc();
  EXPECT_LE(a, b);
}

TEST(TimerTest, TscFrequencyPlausible) {
  double hz = TscHz();
  EXPECT_GT(hz, 1e8);   // > 100 MHz
  EXPECT_LT(hz, 1e11);  // < 100 GHz
}

TEST(TimerTest, WallTimerAdvances) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1;
  EXPECT_GE(t.Seconds(), 0.0);
}

// --- TablePrinter ------------------------------------------------------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter tp("demo");
  tp.SetHeader({"name", "value"});
  tp.AddRow({"a", "1"});
  tp.AddRow({"long-name", "22"});
  std::string s = tp.ToString();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter tp;
  tp.SetHeader({"a", "b", "c"});
  tp.AddRow({"x"});
  std::string s = tp.ToString();
  EXPECT_NE(s.find('x'), std::string::npos);
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::Speedup(2.5), "2.50x");
}


TEST(TablePrinterTest, CsvOutput) {
  TablePrinter tp("csv demo");
  tp.SetHeader({"name", "value"});
  tp.AddRow({"plain", "1"});
  tp.AddRow({"with,comma", "quote\"inside"});
  std::string csv = tp.ToCsv();
  EXPECT_NE(csv.find("# csv demo"), std::string::npos);
  EXPECT_NE(csv.find("name,value"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Crc32cTest, KnownAnswers) {
  // RFC 3720 check value for the ASCII digits "123456789".
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // 32 zero bytes (iSCSI test vector).
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  const char* data = "The quick brown fox jumps over the lazy dog";
  size_t n = std::strlen(data);
  uint32_t one_shot = Crc32c(data, n);
  uint32_t incremental = Crc32c(data, 10);
  incremental = Crc32c(data + 10, n - 10, incremental);
  EXPECT_EQ(incremental, one_shot);
}

TEST(Crc32cTest, DetectsEverySingleByteChange) {
  std::vector<uint8_t> buf(256);
  for (size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<uint8_t>(i);
  uint32_t clean = Crc32c(buf.data(), buf.size());
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] ^= 0xFF;
    EXPECT_NE(Crc32c(buf.data(), buf.size()), clean) << i;
    buf[i] ^= 0xFF;
  }
}

TEST(CheckTest, HandlerInterceptsFailure) {
  // A throwing handler turns the abort into a catchable event, proving all
  // failures funnel through the installed hook.
  struct Intercept {
    [[noreturn]] static void Throw(const char* file, int line,
                                   const char* expr) {
      throw std::runtime_error(std::string(file) + ":" +
                               std::to_string(line) + ": " + expr);
    }
  };
  CheckFailHandler prev = SetCheckFailHandler(&Intercept::Throw);
  EXPECT_THROW(FESIA_CHECK(1 == 2), std::runtime_error);
  try {
    FESIA_CHECK(false);
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("false"), std::string::npos);
  }
  SetCheckFailHandler(prev);
}

TEST(CheckTest, DcheckCompilesOutUnderNdebug) {
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return true;
  };
  FESIA_DCHECK(count());
#ifdef NDEBUG
  EXPECT_EQ(evaluations, 0);  // no side effects in release builds
#else
  EXPECT_EQ(evaluations, 1);
#endif
}

TEST(ByteIoTest, ReaderRejectsOversizedCounts) {
  std::vector<uint8_t> bytes(64, 0);
  ByteReader r{std::span<const uint8_t>(bytes)};
  std::vector<uint64_t> out;
  // A count whose byte size would overflow size_t must be rejected by the
  // remaining-bytes bound, not wrap around.
  Status s = r.GetRawArray(&out, ~uint64_t{0} / 4);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_TRUE(out.empty());
}

TEST(ByteIoTest, WriterReaderRoundTrip) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  w.Put<uint32_t>(0xDEADBEEF);
  w.Put<uint64_t>(42);
  const uint16_t arr[] = {1, 2, 3};
  w.PutRaw(arr, 3);

  ByteReader r{std::span<const uint8_t>(buf)};
  uint32_t a = 0;
  uint64_t b = 0;
  ASSERT_TRUE(r.Get(&a));
  ASSERT_TRUE(r.Get(&b));
  std::vector<uint16_t> back;
  ASSERT_TRUE(r.GetRawArray(&back, 3).ok());
  EXPECT_EQ(a, 0xDEADBEEFu);
  EXPECT_EQ(b, 42u);
  EXPECT_EQ(back, (std::vector<uint16_t>{1, 2, 3}));
  EXPECT_TRUE(r.AtEnd());
  // Reading past the end fails without advancing.
  uint32_t extra = 0;
  EXPECT_FALSE(r.Get(&extra));
}

TEST(CpuTest, ParseSimdLevelNames) {
  SimdLevel level = SimdLevel::kAuto;
  EXPECT_TRUE(ParseSimdLevel("scalar", &level));
  EXPECT_EQ(level, SimdLevel::kScalar);
  EXPECT_TRUE(ParseSimdLevel("avx2", &level));
  EXPECT_EQ(level, SimdLevel::kAvx2);
  EXPECT_TRUE(ParseSimdLevel("avx512", &level));
  EXPECT_EQ(level, SimdLevel::kAvx512);
  EXPECT_TRUE(ParseSimdLevel("auto", &level));
  EXPECT_EQ(level, SimdLevel::kAuto);
  EXPECT_FALSE(ParseSimdLevel("turbo", &level));
  EXPECT_FALSE(ParseSimdLevel("", &level));
  EXPECT_FALSE(ParseSimdLevel(nullptr, &level));
}

}  // namespace
}  // namespace fesia
