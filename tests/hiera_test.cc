// Hiera (STTNI hierarchical intersection) correctness.
#include "baselines/hiera.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "datagen/datagen.h"
#include "util/aligned_buffer.h"
#include "util/cpu.h"
#include "util/rng.h"

namespace fesia::baselines {
namespace {

using ::fesia::datagen::PairWithSelectivity;
using ::fesia::datagen::ReferenceIntersectionSize;
using ::fesia::datagen::SetPair;
using ::fesia::datagen::SortedUniform;

bool HostHasSse42() {
  return static_cast<int>(DetectSimdLevel()) >=
         static_cast<int>(SimdLevel::kSse);
}

class HieraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!HostHasSse42()) GTEST_SKIP() << "host lacks SSE4.2 (STTNI)";
  }
};

TEST_F(HieraTest, LayoutGroupsByHighBits) {
  std::vector<uint32_t> v = {0x00010005, 0x00010009, 0x00020001,
                             0x7FFF0000, 0x7FFF0001, 0x7FFFFFFF};
  HieraSet set(v);
  EXPECT_EQ(set.size(), 6u);
  ASSERT_EQ(set.num_buckets(), 3u);
  EXPECT_EQ(set.buckets()[0].high, 0x0001u);
  EXPECT_EQ(set.buckets()[0].length, 2u);
  EXPECT_EQ(set.buckets()[1].high, 0x0002u);
  EXPECT_EQ(set.buckets()[1].length, 1u);
  EXPECT_EQ(set.buckets()[2].high, 0x7FFFu);
  EXPECT_EQ(set.buckets()[2].length, 3u);
  EXPECT_EQ(set.lows()[0], 0x0005u);
  EXPECT_EQ(set.lows()[5], 0xFFFFu);
}

TEST_F(HieraTest, SttniKernelMatchesReference) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    size_t na = 1 + rng.Below(40);
    size_t nb = 1 + rng.Below(40);
    // Sorted unique 16-bit runs from a small domain (dense -> matches).
    auto mk = [&](size_t n, uint64_t seed) {
      auto v32 = SortedUniform(n, 120, seed);
      AlignedBuffer<uint16_t> buf(v32.size(), 16);
      for (size_t i = 0; i < v32.size(); ++i) {
        buf[i] = static_cast<uint16_t>(v32[i]);
      }
      return buf;
    };
    auto ba = mk(std::min(na, size_t{100}), trial * 2 + 1);
    auto bb = mk(std::min(nb, size_t{100}), trial * 2 + 2);
    size_t expected = 0;
    for (size_t i = 0; i < ba.size(); ++i) {
      for (size_t j = 0; j < bb.size(); ++j) {
        expected += ba[i] == bb[j];
      }
    }
    ASSERT_EQ(SttniIntersect16(ba.data(), ba.size(), bb.data(), bb.size()),
              expected)
        << "trial=" << trial;
  }
}

TEST_F(HieraTest, MatchesReferenceOnRandomPairs) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SetPair p = PairWithSelectivity(3000, 4000, 0.1, seed);
    EXPECT_EQ(HieraOneShot(p.a.data(), p.a.size(), p.b.data(), p.b.size()),
              p.intersection_size)
        << seed;
  }
}

TEST_F(HieraTest, DenseKeysManyPerBucket) {
  // Dense 32-bit keys share high bits: few buckets, long 16-bit runs —
  // Hiera's favorable case.
  SetPair p = PairWithSelectivity(20000, 20000, 0.2, 9,
                                  /*universe=*/1u << 18);
  HieraSet ha(p.a);
  HieraSet hb(p.b);
  EXPECT_LE(ha.num_buckets(), 8u);
  EXPECT_EQ(HieraIntersect(ha, hb), p.intersection_size);
}

TEST_F(HieraTest, SparseKeysOnePerBucket) {
  // Sparse keys: one element per bucket, the degenerate case the paper
  // calls out. Correctness must hold regardless.
  std::vector<uint32_t> a, b;
  for (uint32_t i = 0; i < 2000; ++i) {
    a.push_back(i << 16 | (i & 0xF));
    if (i % 3 == 0) b.push_back(i << 16 | (i & 0xF));
  }
  HieraSet ha(a);
  HieraSet hb(b);
  EXPECT_EQ(ha.num_buckets(), a.size());
  EXPECT_EQ(HieraIntersect(ha, hb), b.size());
}

TEST_F(HieraTest, EmptyAndDisjoint) {
  std::vector<uint32_t> a = {1, 2, 3};
  std::vector<uint32_t> empty;
  EXPECT_EQ(HieraOneShot(a.data(), a.size(), empty.data(), 0), 0u);
  EXPECT_EQ(HieraOneShot(empty.data(), 0, a.data(), a.size()), 0u);
  std::vector<uint32_t> c = {0x10000001, 0x20000002};
  EXPECT_EQ(HieraOneShot(a.data(), a.size(), c.data(), c.size()), 0u);
}

TEST_F(HieraTest, BucketBoundaryValues) {
  std::vector<uint32_t> a = {0x0000FFFF, 0x00010000, 0x0001FFFF, 0x00020000};
  std::vector<uint32_t> b = {0x0000FFFF, 0x0001FFFF, 0x00030000};
  EXPECT_EQ(HieraOneShot(a.data(), a.size(), b.data(), b.size()), 2u);
}

TEST_F(HieraTest, LargeSkewedInputs) {
  SetPair p = PairWithSelectivity(500, 50000, 0.4, 11, /*universe=*/1u << 20);
  EXPECT_EQ(HieraOneShot(p.a.data(), p.a.size(), p.b.data(), p.b.size()),
            p.intersection_size);
}

}  // namespace
}  // namespace fesia::baselines
