// Workload-generator properties: the experiment sweeps rely on these knobs
// being exact.
#include "datagen/datagen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "datagen/zipf.h"
#include "util/rng.h"

namespace fesia::datagen {
namespace {

bool SortedUnique(const std::vector<uint32_t>& v) {
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i - 1] >= v[i]) return false;
  }
  return true;
}

TEST(SortedUniformTest, SizeSortedUniqueBounded) {
  for (size_t n : {0, 1, 10, 1000, 20000}) {
    auto v = SortedUniform(n, 1u << 20, n + 1);
    EXPECT_EQ(v.size(), n);
    EXPECT_TRUE(SortedUnique(v));
    if (!v.empty()) {
      EXPECT_LT(v.back(), 1u << 20);
    }
  }
}

TEST(SortedUniformTest, Deterministic) {
  EXPECT_EQ(SortedUniform(500, 10000, 7), SortedUniform(500, 10000, 7));
  EXPECT_NE(SortedUniform(500, 10000, 7), SortedUniform(500, 10000, 8));
}

TEST(SortedUniformTest, DenseUniverse) {
  // n == universe: must return exactly 0..n-1.
  auto v = SortedUniform(100, 100, 3);
  for (uint32_t i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
}

TEST(SortedUniformTest, NearDenseLargeSample) {
  // Regression: ~91% fill used to degenerate into a coupon-collector loop
  // with a full re-sort per round (hung the Fig. 12 corpus builder).
  auto v = SortedUniform(200000, 220000, 3);
  EXPECT_EQ(v.size(), 200000u);
  EXPECT_TRUE(SortedUnique(v));
  EXPECT_LT(v.back(), 220000u);
}

TEST(SortedUniformTest, FullUniverseSample) {
  auto v = SortedUniform(50000, 50000, 4);
  EXPECT_EQ(v.size(), 50000u);
  for (uint32_t i = 0; i < 50000; ++i) ASSERT_EQ(v[i], i);
}

TEST(SortedUniformTest, NeverEmitsSentinel) {
  auto v = SortedUniform(1000, ~0ull, 5);
  for (uint32_t x : v) EXPECT_NE(x, 0xFFFFFFFFu);
}

TEST(PairWithSelectivityTest, ExactIntersectionSize) {
  for (double sel : {0.0, 0.01, 0.25, 0.5, 1.0}) {
    SetPair p = PairWithSelectivity(2000, 3000, sel, 11);
    EXPECT_EQ(p.a.size(), 2000u);
    EXPECT_EQ(p.b.size(), 3000u);
    EXPECT_TRUE(SortedUnique(p.a));
    EXPECT_TRUE(SortedUnique(p.b));
    size_t expected =
        static_cast<size_t>(std::llround(sel * 2000));
    EXPECT_EQ(p.intersection_size, expected) << "sel=" << sel;
    EXPECT_EQ(ReferenceIntersectionSize(p.a, p.b), expected) << "sel=" << sel;
  }
}

TEST(PairWithSelectivityTest, SkewedSizes) {
  SetPair p = PairWithSelectivity(100, 100000, 0.5, 13);
  EXPECT_EQ(p.a.size(), 100u);
  EXPECT_EQ(p.b.size(), 100000u);
  EXPECT_EQ(ReferenceIntersectionSize(p.a, p.b), 50u);
}

TEST(PairWithSelectivityTest, Deterministic) {
  SetPair p1 = PairWithSelectivity(1000, 1000, 0.1, 42);
  SetPair p2 = PairWithSelectivity(1000, 1000, 0.1, 42);
  EXPECT_EQ(p1.a, p2.a);
  EXPECT_EQ(p1.b, p2.b);
}

TEST(KSetsWithDensityTest, ShapeAndExpectedIntersection) {
  auto sets = KSetsWithDensity(3, 10000, 0.5, 17);
  ASSERT_EQ(sets.size(), 3u);
  for (const auto& s : sets) {
    EXPECT_EQ(s.size(), 10000u);
    EXPECT_TRUE(SortedUnique(s));
    EXPECT_LT(s.back(), 20000u + 1);  // universe = n / density
  }
  // E[r] = n * density^(k-1) = 10000 * 0.25 = 2500; allow wide tolerance.
  size_t r = ReferenceIntersection(sets).size();
  EXPECT_GT(r, 2000u);
  EXPECT_LT(r, 3000u);
}

TEST(KSetsWithDensityTest, DensityOneMakesIdenticalSets) {
  auto sets = KSetsWithDensity(2, 500, 1.0, 23);
  EXPECT_EQ(sets[0], sets[1]);  // universe == n forces the full range
}

TEST(ReferenceTest, IntersectionSizeAndElements) {
  std::vector<uint32_t> a = {1, 3, 5, 7};
  std::vector<uint32_t> b = {3, 4, 7, 9};
  EXPECT_EQ(ReferenceIntersectionSize(a, b), 2u);
  auto r = ReferenceIntersection({a, b});
  EXPECT_EQ(r, (std::vector<uint32_t>{3, 7}));
}

TEST(ReferenceTest, KWayIntersection) {
  std::vector<std::vector<uint32_t>> sets = {
      {1, 2, 3, 4, 5}, {2, 3, 5, 8}, {3, 5, 9}};
  EXPECT_EQ(ReferenceIntersection(sets), (std::vector<uint32_t>{3, 5}));
  EXPECT_TRUE(ReferenceIntersection({}).empty());
}

// --- Zipf --------------------------------------------------------------------

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution z(1000, 1.0);
  double sum = 0;
  for (size_t i = 0; i < 1000; ++i) sum += z.Pmf(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, MassDecreasesWithRank) {
  ZipfDistribution z(100, 1.2);
  for (size_t i = 1; i < 100; ++i) EXPECT_GT(z.Pmf(i - 1), z.Pmf(i));
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfDistribution z(10, 0.0);
  for (size_t i = 0; i < 10; ++i) EXPECT_NEAR(z.Pmf(i), 0.1, 1e-9);
}

TEST(ZipfTest, SamplesFollowPmf) {
  ZipfDistribution z(50, 1.0);
  Rng rng(3);
  std::vector<int> counts(50, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[z.Sample(rng)];
  // Rank 0 should receive about Pmf(0) of the mass.
  EXPECT_NEAR(static_cast<double>(counts[0]) / kDraws, z.Pmf(0), 0.01);
  // Monotone-ish head.
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[5], counts[30]);
}

TEST(ZipfTest, SampleInRange) {
  ZipfDistribution z(7, 2.0);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(z.Sample(rng), 7u);
}

}  // namespace
}  // namespace fesia::datagen
