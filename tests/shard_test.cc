// Shard subsystem: ShardMap determinism and serialization, golden
// equivalence of the scatter-gather router against the single-engine
// batch path, per-shard lifecycle isolation (dead stores, failed reloads,
// quarantine), explicit partial results, and hot-swap under concurrent
// router traffic (the TSan habitat for the per-shard RCU pointers).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "index/inverted_index.h"
#include "index/query_engine.h"
#include "index/query_gen.h"
#include "shard/shard_map.h"
#include "shard/shard_router.h"
#include "shard/sharded_index.h"
#include "util/fault_injection.h"
#include "util/file_io.h"
#include "util/status.h"

namespace fesia {
namespace {

namespace fs = std::filesystem;

using ::fesia::index::BatchStats;
using ::fesia::index::InvertedIndex;
using ::fesia::index::QueryEngine;
using ::fesia::index::QueryOutcome;
using ::fesia::index::QueryResult;
using ::fesia::shard::MergeBatchStats;
using ::fesia::shard::RoutedQueryResult;
using ::fesia::shard::RouterOptions;
using ::fesia::shard::ShardBatchStats;
using ::fesia::shard::ShardedIndex;
using ::fesia::shard::ShardedIndexOptions;
using ::fesia::shard::ShardMap;
using ::fesia::shard::ShardRouter;

std::string NewShardDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "fesia_shard_test." + tag;
  fs::remove_all(dir);
  return dir;
}

void FlipByteOnDisk(const std::string& path, size_t offset) {
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(path, &bytes).ok()) << path;
  ASSERT_LT(offset, bytes.size());
  bytes[offset] ^= 0xFF;
  ASSERT_TRUE(WriteFileBytes(path, bytes.data(), bytes.size()).ok());
}

// ---------------------------------------------------------------------------
// ShardMap

TEST(ShardMapTest, DefaultIsSingleShardIdentity) {
  ShardMap map;
  EXPECT_EQ(map.num_shards(), 1u);
  for (uint32_t doc : {0u, 1u, 999u, 0xFFFFFFFFu}) {
    EXPECT_EQ(map.ShardOf(doc), 0u);
  }
}

TEST(ShardMapTest, HashIsDeterministicInRangeAndSaltSensitive) {
  ShardMap a = ShardMap::Hash(8);
  ShardMap b = ShardMap::Hash(8);
  ShardMap salted = ShardMap::Hash(8, /*salt=*/12345);
  std::vector<size_t> mass(8, 0);
  size_t moved = 0;
  for (uint32_t doc = 0; doc < 20000; ++doc) {
    uint32_t s = a.ShardOf(doc);
    ASSERT_LT(s, 8u);
    EXPECT_EQ(s, b.ShardOf(doc));
    ++mass[s];
    if (salted.ShardOf(doc) != s) ++moved;
  }
  // Fmix32 spreads 20k sequential ids near-uniformly over 8 shards.
  for (size_t m : mass) {
    EXPECT_GT(m, 20000u / 8 / 2);
    EXPECT_LT(m, 20000u / 8 * 2);
  }
  EXPECT_GT(moved, 0u);
}

TEST(ShardMapTest, RangePartitionsContiguouslyAndFoldsOverflow) {
  ShardMap map = ShardMap::Range(4, 1000);
  EXPECT_EQ(map.range_width(), 250u);
  EXPECT_EQ(map.ShardOf(0), 0u);
  EXPECT_EQ(map.ShardOf(249), 0u);
  EXPECT_EQ(map.ShardOf(250), 1u);
  EXPECT_EQ(map.ShardOf(999), 3u);
  // Ids at or above the universe fold into the last shard.
  EXPECT_EQ(map.ShardOf(1000), 3u);
  EXPECT_EQ(map.ShardOf(0xFFFFFFFFu), 3u);
}

TEST(ShardMapTest, SerializeRoundTripsEveryKind) {
  for (const ShardMap& map :
       {ShardMap(), ShardMap::Hash(8), ShardMap::Hash(3, 77),
        ShardMap::Range(4, 1000), ShardMap::Range(7, 13)}) {
    auto bytes = map.Serialize();
    auto back = ShardMap::Deserialize(bytes);
    ASSERT_TRUE(back.ok()) << back.status().message();
    EXPECT_EQ(*back, map);
  }
}

TEST(ShardMapTest, DeserializeRejectsCorruptTruncatedAndTrailing) {
  std::vector<uint8_t> bytes = ShardMap::Hash(4).Serialize();

  for (size_t i = 0; i < bytes.size(); ++i) {
    std::vector<uint8_t> bad = bytes;
    bad[i] ^= 0xFF;
    EXPECT_FALSE(ShardMap::Deserialize(bad).ok()) << "flip at " << i;
  }
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(
        ShardMap::Deserialize(std::span<const uint8_t>(bytes.data(), len))
            .ok())
        << "truncated to " << len;
  }
  std::vector<uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_FALSE(ShardMap::Deserialize(trailing).ok());
}

// ---------------------------------------------------------------------------
// Router golden equivalence and lifecycle

class ShardRouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    index::CorpusParams corpus;
    corpus.num_docs = 4000;
    corpus.num_terms = 100;
    corpus.avg_terms_per_doc = 30.0;
    corpus.seed = 23;
    idx_ = InvertedIndex::BuildSynthetic(corpus);

    // Uniform-ish low-selectivity conjunctions plus skewed pairs: the two
    // workload shapes of the paper's database experiment, so equivalence
    // holds under both balanced and lopsided per-shard work.
    queries_ = index::LowSelectivityQueries(idx_, 2, 20, 100000, 10, 1.0, 7);
    auto arity3 = index::LowSelectivityQueries(idx_, 3, 20, 100000, 6, 1.0, 8);
    queries_.insert(queries_.end(), arity3.begin(), arity3.end());
    auto skewed = index::SkewedPairQueries(idx_, 60, 0.1, 6, 9);
    queries_.insert(queries_.end(), skewed.begin(), skewed.end());
    // Degenerate shapes ride along: empty query and out-of-range term.
    queries_.push_back({});
    queries_.push_back({idx_.num_terms() + 5});
    ASSERT_GE(queries_.size(), 15u);

    reference_ = QueryEngine(&idx_, params_).QueryBatch(queries_, {});
  }

  // Builds a memory-only sharded index over idx_ and rebuilds every shard.
  ShardedIndex MemoryIndex(const ShardMap& map) {
    ShardedIndexOptions options;
    options.params = params_;
    auto sharded = ShardedIndex::Create(&idx_, map, options);
    EXPECT_TRUE(sharded.ok()) << sharded.status().message();
    EXPECT_TRUE(sharded->RebuildAll().ok());
    return *std::move(sharded);
  }

  void ExpectGolden(const std::vector<RoutedQueryResult>& routed,
                    uint32_t num_shards, bool materialized) {
    ASSERT_EQ(routed.size(), reference_.size());
    for (size_t q = 0; q < routed.size(); ++q) {
      const RoutedQueryResult& r = routed[q];
      EXPECT_TRUE(r.ok()) << q << ": " << r.status.message();
      EXPECT_EQ(r.shards_answered, num_shards) << q;
      EXPECT_EQ(r.shards_total, num_shards) << q;
      EXPECT_EQ(r.count, reference_[q].count) << q;
      if (materialized) {
        EXPECT_EQ(r.docs, reference_[q].docs) << q;
      } else {
        EXPECT_TRUE(r.docs.empty()) << q;
      }
    }
  }

  FesiaParams params_;
  InvertedIndex idx_;
  std::vector<index::Query> queries_;
  std::vector<QueryResult> reference_;
};

TEST_F(ShardRouterTest, GoldenEquivalenceAcrossShardCountsAndMaps) {
  for (uint32_t n : {1u, 2u, 4u, 8u}) {
    for (const ShardMap& map :
         {ShardMap::Hash(n), ShardMap::Range(n, idx_.num_docs())}) {
      ShardedIndex sharded = MemoryIndex(map);
      ShardRouter router(&sharded);
      ExpectGolden(router.QueryBatch(queries_), n, /*materialized=*/true);
      ExpectGolden(router.CountBatch(queries_), n, /*materialized=*/false);
    }
  }
}

TEST_F(ShardRouterTest, StatsRollUpPerShardAndMerged) {
  ShardedIndex sharded = MemoryIndex(ShardMap::Hash(4));
  ShardRouter router(&sharded);
  ShardBatchStats stats;
  auto routed = router.CountBatch(queries_, {}, &stats);

  ASSERT_EQ(stats.shard_labels.size(), 4u);
  EXPECT_EQ(stats.shard_labels[0], "shard-00");
  EXPECT_EQ(stats.shard_labels[3], "shard-03");
  ASSERT_EQ(stats.per_shard.size(), 4u);
  for (const BatchStats& s : stats.per_shard) {
    EXPECT_EQ(s.ok, queries_.size());
    EXPECT_EQ(s.latency_seconds.size(), queries_.size());
  }
  EXPECT_EQ(stats.merged.ok, 4 * queries_.size());
  EXPECT_EQ(stats.merged.latency_seconds.size(), 4 * queries_.size());
  EXPECT_EQ(stats.complete_queries, routed.size());
  EXPECT_EQ(stats.partial_queries, 0u);
  EXPECT_EQ(stats.shards_total, 4u);
  EXPECT_EQ(stats.shards_serving, 4u);
  EXPECT_EQ(stats.latency_seconds.size(), routed.size());
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GE(stats.latency_max, stats.latency_p99);
  EXPECT_GE(stats.latency_p99, stats.latency_p50);
}

TEST_F(ShardRouterTest, QuarantinedShardYieldsExplicitPartialResults) {
  ShardedIndex sharded = MemoryIndex(ShardMap::Hash(4));
  ShardRouter router(&sharded);
  sharded.QuarantineShard(2);
  EXPECT_EQ(sharded.serving_shards(), 3u);

  ShardBatchStats stats;
  auto routed = router.QueryBatch(queries_, {}, &stats);
  ASSERT_EQ(routed.size(), reference_.size());
  for (size_t q = 0; q < routed.size(); ++q) {
    const RoutedQueryResult& r = routed[q];
    EXPECT_FALSE(r.ok()) << q;
    EXPECT_EQ(r.outcome, QueryOutcome::kFailed) << q;
    EXPECT_EQ(r.status.code(), StatusCode::kUnavailable) << q;
    EXPECT_EQ(r.shards_answered, 3u) << q;
    EXPECT_EQ(r.shards_total, 4u) << q;
    EXPECT_FALSE(r.complete()) << q;
    // The answered shards' merged result is a subset of the truth.
    EXPECT_LE(r.count, reference_[q].count) << q;
    for (uint32_t doc : r.docs) {
      EXPECT_NE(sharded.shard_map().ShardOf(doc), 2u);
    }
  }
  EXPECT_EQ(stats.shards_serving, 3u);
  EXPECT_EQ(stats.partial_queries, routed.size());

  // Revival is instant: the engine was kept.
  sharded.ReviveShard(2);
  ExpectGolden(router.QueryBatch(queries_), 4, /*materialized=*/true);
}

TEST_F(ShardRouterTest, NoServingShardsFailsEveryQuery) {
  ShardedIndexOptions options;
  options.params = params_;
  auto sharded = ShardedIndex::Create(&idx_, ShardMap::Hash(2), options);
  ASSERT_TRUE(sharded.ok());
  // No RebuildAll: every shard is engine-less.
  ShardRouter router(&*sharded);
  ShardBatchStats stats;
  auto routed = router.CountBatch(queries_, {}, &stats);
  for (const RoutedQueryResult& r : routed) {
    EXPECT_EQ(r.outcome, QueryOutcome::kFailed);
    EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
    EXPECT_EQ(r.shards_answered, 0u);
  }
  EXPECT_EQ(stats.shards_serving, 0u);
  EXPECT_EQ(stats.merged.ok, 0u);
}

TEST_F(ShardRouterTest, ExpiredBatchBudgetDrainsAsDeadlineExceeded) {
  ShardedIndex sharded = MemoryIndex(ShardMap::Hash(4));
  ShardRouter router(&sharded);
  RouterOptions options;
  options.batch_deadline_seconds = 1e-9;
  auto routed = router.CountBatch(queries_, options);
  size_t deadline_hits = 0;
  for (const RoutedQueryResult& r : routed) {
    if (r.outcome == QueryOutcome::kDeadlineExceeded) ++deadline_hits;
  }
  // The budget was spent before the first sub-query; effectively the whole
  // batch drains (a straggler or two may sneak through on a fast machine).
  EXPECT_GT(deadline_hits, routed.size() / 2);
}

TEST_F(ShardRouterTest, CancellationDrainsTheWholeScatter) {
  ShardedIndex sharded = MemoryIndex(ShardMap::Hash(4));
  ShardRouter router(&sharded);
  RouterOptions options;
  options.cancel = CancellationToken::Create();
  options.cancel.Cancel();
  auto routed = router.QueryBatch(queries_, options);
  for (const RoutedQueryResult& r : routed) {
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.shards_answered, 0u);
    EXPECT_TRUE(r.docs.empty());
  }
}

// ---------------------------------------------------------------------------
// Persistence

TEST_F(ShardRouterTest, PersistSaveReloadRoundTrip) {
  const std::string dir = NewShardDir("roundtrip");
  const ShardMap map = ShardMap::Hash(4);
  ShardedIndexOptions options;
  options.params = params_;
  options.store_dir = dir;
  {
    auto sharded = ShardedIndex::Create(&idx_, map, options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().message();
    ASSERT_TRUE(sharded->RebuildAll().ok());
    uint64_t gen = 0;
    ASSERT_TRUE(sharded->SaveShard(0, &gen).ok());
    EXPECT_EQ(gen, 1u);
    ASSERT_TRUE(sharded->SaveAll().ok());  // saves the remaining shards
  }
  EXPECT_TRUE(fs::exists(dir + "/SHARDMAP"));
  for (int s = 0; s < 4; ++s) {
    EXPECT_TRUE(fs::exists(dir + "/shard-0" + std::to_string(s)));
  }

  auto reopened = ShardedIndex::Create(&idx_, map, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  for (uint32_t s = 0; s < 4; ++s) {
    ASSERT_TRUE(reopened->ReloadShard(s).ok()) << s;
  }
  EXPECT_EQ(reopened->serving_shards(), 4u);
  ShardRouter router(&*reopened);
  ExpectGolden(router.QueryBatch(queries_), 4, /*materialized=*/true);
}

TEST_F(ShardRouterTest, ReopenWithDifferentMapRefused) {
  const std::string dir = NewShardDir("map-mismatch");
  ShardedIndexOptions options;
  options.params = params_;
  options.store_dir = dir;
  ASSERT_TRUE(ShardedIndex::Create(&idx_, ShardMap::Hash(4), options).ok());

  auto wrong_n = ShardedIndex::Create(&idx_, ShardMap::Hash(2), options);
  EXPECT_EQ(wrong_n.status().code(), StatusCode::kFailedPrecondition);
  auto wrong_kind = ShardedIndex::Create(
      &idx_, ShardMap::Range(4, idx_.num_docs()), options);
  EXPECT_EQ(wrong_kind.status().code(), StatusCode::kFailedPrecondition);
  // The identical map still opens.
  EXPECT_TRUE(ShardedIndex::Create(&idx_, ShardMap::Hash(4), options).ok());
}

TEST_F(ShardRouterTest, DeadShardStoreDegradesToPartialService) {
  const std::string dir = NewShardDir("dead-store");
  const ShardMap map = ShardMap::Hash(4);
  ShardedIndexOptions options;
  options.params = params_;
  options.store_dir = dir;
  {
    auto sharded = ShardedIndex::Create(&idx_, map, options);
    ASSERT_TRUE(sharded.ok());
    ASSERT_TRUE(sharded->RebuildAll().ok());
    ASSERT_TRUE(sharded->SaveAll().ok());
  }
  // Rot every generation of shard 1: its store is unrecoverable at open.
  for (const auto& entry : fs::directory_iterator(dir + "/shard-01")) {
    if (entry.path().filename().string().rfind("snap.", 0) == 0) {
      ASSERT_TRUE(WriteFileBytes(entry.path().string(),
                                 reinterpret_cast<const uint8_t*>("rot"), 3)
                      .ok());
    }
  }

  auto reopened = ShardedIndex::Create(&idx_, map, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_TRUE(reopened->shard_quarantined(1));
  EXPECT_EQ(reopened->shard_status(1).code(), StatusCode::kDataLoss);
  EXPECT_EQ(reopened->manager(1), nullptr);
  EXPECT_EQ(reopened->ReloadShard(1).code(), StatusCode::kFailedPrecondition);

  // The healthy shards reload and serve; queries are explicit partials.
  for (uint32_t s : {0u, 2u, 3u}) {
    ASSERT_TRUE(reopened->ReloadShard(s).ok()) << s;
  }
  EXPECT_EQ(reopened->serving_shards(), 3u);
  ShardRouter router(&*reopened);
  auto routed = router.QueryBatch(queries_);
  for (size_t q = 0; q < routed.size(); ++q) {
    EXPECT_EQ(routed[q].shards_answered, 3u) << q;
    EXPECT_EQ(routed[q].shards_total, 4u) << q;
    EXPECT_EQ(routed[q].status.code(), StatusCode::kUnavailable) << q;
    EXPECT_LE(routed[q].count, reference_[q].count) << q;
  }

  // The degradation ladder's last rung: rebuild the dead shard from the
  // in-memory sub-index (memory-only engine) and service is whole again.
  ASSERT_TRUE(reopened->RebuildShard(1).ok());
  EXPECT_FALSE(reopened->shard_quarantined(1));
  EXPECT_EQ(reopened->serving_shards(), 4u);
  ExpectGolden(router.QueryBatch(queries_), 4, /*materialized=*/true);
}

TEST_F(ShardRouterTest, FailedReloadRollsBackOnlyThatShard) {
  const std::string dir = NewShardDir("reload-rollback");
  const ShardMap map = ShardMap::Hash(4);
  ShardedIndexOptions options;
  options.params = params_;
  options.store_dir = dir;
  auto sharded = ShardedIndex::Create(&idx_, map, options);
  ASSERT_TRUE(sharded.ok());
  ASSERT_TRUE(sharded->RebuildAll().ok());
  ASSERT_TRUE(sharded->SaveAll().ok());

  // Rot shard 2's only generation, then reload it: the reload fails, the
  // incumbent engine keeps serving, and no other shard notices.
  FlipByteOnDisk(dir + "/shard-02/snap.000001", 64);
  EXPECT_FALSE(sharded->ReloadShard(2).ok());
  EXPECT_FALSE(sharded->shard_status(2).ok());
  EXPECT_EQ(sharded->serving_shards(), 4u);

  ShardRouter router(&*sharded);
  ExpectGolden(router.QueryBatch(queries_), 4, /*materialized=*/true);
}

// Scatter-gather under concurrent per-shard hot swaps: reader threads
// route batches while the main thread reloads shards round-robin,
// including forced rollbacks. Every batch must gather exact counts — each
// batch pins the engine snapshots it started with — and the test must be
// clean under TSan (scripts/check.sh runs the shard label there).
TEST_F(ShardRouterTest, ScatterGatherUnderConcurrentShardReloads) {
  const std::string dir = NewShardDir("hot-swap-traffic");
  const ShardMap map = ShardMap::Hash(4);
  ShardedIndexOptions options;
  options.params = params_;
  options.store_dir = dir;
  auto sharded = ShardedIndex::Create(&idx_, map, options);
  ASSERT_TRUE(sharded.ok());
  ASSERT_TRUE(sharded->RebuildAll().ok());
  ASSERT_TRUE(sharded->SaveAll().ok());

  ShardRouter router(&*sharded);
  std::atomic<bool> stop{false};
  std::atomic<size_t> batches_done{0};
  std::atomic<size_t> mismatches{0};
  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      RouterOptions ropts;
      ropts.num_threads = 2;
      while (!stop.load(std::memory_order_relaxed)) {
        auto routed = router.CountBatch(queries_, ropts);
        for (size_t q = 0; q < routed.size(); ++q) {
          if (!routed[q].ok() || routed[q].count != reference_[q].count) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
        batches_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  constexpr int kReloads = 24;
  for (int i = 0; i < kReloads; ++i) {
    uint32_t s = static_cast<uint32_t>(i) % 4;
    if (i == kReloads / 2) {
      // Mid-storm forced rollback on one shard; traffic stays exact.
      fault::ScopedFault f(fault::FaultPoint::kSnapshotBitFlip, 0, 900);
      EXPECT_FALSE(sharded->ReloadShard(s).ok());
      continue;
    }
    Status st = sharded->ReloadShard(s);
    ASSERT_TRUE(st.ok()) << st.message();
  }
  while (batches_done.load(std::memory_order_relaxed) < kReaders * 3u) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(batches_done.load(), 0u);
}

// ---------------------------------------------------------------------------
// MergeBatchStats

TEST(MergeBatchStatsTest, SumsCountersPoolsLatenciesMaxesWall) {
  BatchStats a;
  a.wall_seconds = 0.5;
  a.latency_seconds = {0.1, 0.2};
  a.ok = 2;
  a.retries = 1;
  a.downgrades = 2;
  BatchStats b;
  b.wall_seconds = 2.0;
  b.latency_seconds = {0.4, 0.3};
  b.ok = 1;
  b.deadline_exceeded = 1;
  b.shed = 0;
  b.failed = 0;
  b.slow_queries = 1;

  std::vector<BatchStats> parts = {a, b};
  BatchStats merged = MergeBatchStats(parts);
  EXPECT_DOUBLE_EQ(merged.wall_seconds, 2.0);
  EXPECT_EQ(merged.latency_seconds.size(), 4u);
  EXPECT_EQ(merged.ok, 3u);
  EXPECT_EQ(merged.deadline_exceeded, 1u);
  EXPECT_EQ(merged.retries, 1u);
  EXPECT_EQ(merged.downgrades, 2u);
  EXPECT_EQ(merged.slow_queries, 1u);
  EXPECT_DOUBLE_EQ(merged.latency_max, 0.4);
  EXPECT_DOUBLE_EQ(merged.queries_per_second, 4.0 / 2.0);
  EXPECT_GE(merged.latency_p95, merged.latency_p50);
}

TEST(MergeBatchStatsTest, EmptyInputIsZeroed) {
  BatchStats merged = MergeBatchStats({});
  EXPECT_EQ(merged.ok, 0u);
  EXPECT_EQ(merged.latency_seconds.size(), 0u);
  EXPECT_DOUBLE_EQ(merged.wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(merged.queries_per_second, 0.0);
}

}  // namespace
}  // namespace fesia
