// Deadline-storm stress for the batch executor: aggressive deadlines,
// admission pressure, injected stalls/failures, and caller cancellation on
// the shared process-wide pool. Excluded from tier-1 ctest (label "stress",
// DISABLED); scripts/check.sh runs the binary directly under `timeout`,
// and the TSan preset is its primary habitat.
//
// Invariants checked on every iteration:
//   - every query has exactly one outcome and the BatchStats counters sum
//     to the batch size (no lost or double-counted queries),
//   - ok() results exactly match a serial CountFesia (a stopped attempt's
//     partial count never leaks into an OK result),
//   - InFlightQueries() returns to zero (no leaked admission slots).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include "index/inverted_index.h"
#include "index/query_engine.h"
#include "index/query_gen.h"
#include "store/index_manager.h"
#include "store/snapshot_store.h"
#include "util/fault_injection.h"
#include "util/memory_budget.h"
#include "util/rng.h"

namespace fesia::index {
namespace {

class BatchStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CorpusParams cp;
    cp.num_docs = 60000;
    cp.num_terms = 3000;
    cp.avg_terms_per_doc = 30;
    cp.seed = 9;
    idx_ = InvertedIndex::BuildSynthetic(cp);
    engine_ = std::make_unique<QueryEngine>(&idx_, FesiaParams{});
    queries_ = LowSelectivityQueries(idx_, 2, 100, 5000, 30, 0.5, 91);
    auto three = LowSelectivityQueries(idx_, 3, 100, 5000, 20, 0.5, 92);
    queries_.insert(queries_.end(), three.begin(), three.end());
    // Head-term (Zipf-heaviest) pairs: the expensive tail that deadlines
    // exist to bound.
    for (uint32_t t = 1; t < 6; ++t) queries_.push_back({0, t});
    serial_.reserve(queries_.size());
    for (const auto& q : queries_) serial_.push_back(engine_->CountFesia(q));
  }

  void CheckInvariants(const std::vector<QueryResult>& results,
                       const BatchStats& stats) {
    ASSERT_EQ(results.size(), queries_.size());
    size_t ok = 0, timeout = 0, shed = 0, failed = 0;
    for (size_t i = 0; i < results.size(); ++i) {
      const QueryResult& r = results[i];
      switch (r.outcome) {
        case QueryOutcome::kOk:
          ++ok;
          EXPECT_TRUE(r.status.ok());
          EXPECT_EQ(r.count, serial_[i]) << "query " << i;
          break;
        case QueryOutcome::kDeadlineExceeded:
          ++timeout;
          EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
          break;
        case QueryOutcome::kShed:
          ++shed;
          EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
          EXPECT_EQ(r.attempts, 0);
          break;
        case QueryOutcome::kFailed:
          ++failed;
          EXPECT_FALSE(r.status.ok());
          break;
      }
    }
    EXPECT_EQ(stats.ok, ok);
    EXPECT_EQ(stats.deadline_exceeded, timeout);
    EXPECT_EQ(stats.shed, shed);
    EXPECT_EQ(stats.failed, failed);
    EXPECT_EQ(ok + timeout + shed + failed, queries_.size());
    EXPECT_EQ(engine_->InFlightQueries(), 0u);
  }

  InvertedIndex idx_;
  std::unique_ptr<QueryEngine> engine_;
  std::vector<Query> queries_;
  std::vector<size_t> serial_;
};

TEST_F(BatchStressTest, DeadlineStormLeavesNoResidue) {
  // 1 ms per-query budget over Zipf lists: some queries finish, some time
  // out; either way the accounting must balance and nothing may leak.
  for (int iter = 0; iter < 20; ++iter) {
    BatchOptions opts;
    opts.num_threads = 4;
    opts.query_deadline_seconds = 0.001;
    BatchStats stats;
    std::vector<QueryResult> results =
        engine_->CountBatch(queries_, opts, &stats);
    CheckInvariants(results, stats);
    // Cancellation latency is bounded by one chunk of work, so even a
    // timed-out query returns promptly. The bound here is deliberately
    // loose (sanitizer builds inflate chunk cost) but still catches a
    // query running to completion past its budget.
    for (const QueryResult& r : results) {
      if (r.outcome == QueryOutcome::kDeadlineExceeded) {
        EXPECT_LT(r.latency_seconds, 1.0);
      }
    }
  }
}

TEST_F(BatchStressTest, ConcurrentBatchesWithMidFlightCancellation) {
  constexpr int kBatches = 4;
  std::vector<CancellationToken> tokens;
  for (int i = 0; i < kBatches; ++i) {
    tokens.push_back(CancellationToken::Create());
  }
  std::vector<std::vector<QueryResult>> results(kBatches);
  std::vector<BatchStats> stats(kBatches);
  std::vector<std::thread> threads;
  threads.reserve(kBatches);
  for (int b = 0; b < kBatches; ++b) {
    threads.emplace_back([&, b] {
      BatchOptions opts;
      opts.num_threads = 2;
      opts.query_deadline_seconds = 0.005;
      opts.admission_capacity = 6;
      opts.cancel = tokens[b];
      results[b] = engine_->CountBatch(queries_, opts, &stats[b]);
    });
  }
  // Cancel half the batches while they run.
  tokens[0].Cancel();
  tokens[2].Cancel();
  for (auto& t : threads) t.join();
  for (int b = 0; b < kBatches; ++b) {
    CheckInvariants(results[b], stats[b]);
  }
  EXPECT_EQ(engine_->InFlightQueries(), 0u);
}

TEST_F(BatchStressTest, FaultStormWithRetriesBalances) {
  Rng rng(0xFE51Au);
  for (int iter = 0; iter < 15; ++iter) {
    // Random mix of injected stalls and transient failures against
    // aggressive deadlines and a tight admission cap.
    if (rng.NextBool(0.5)) {
      fault::Arm(fault::FaultPoint::kQueryDelay, rng.Below(4),
                 /*param=*/2000 + rng.Below(4000));
    }
    if (rng.NextBool(0.5)) {
      fault::Arm(fault::FaultPoint::kAllocation, rng.Below(8));
    }
    BatchOptions opts;
    opts.num_threads = 1 + rng.Below(4);
    opts.query_deadline_seconds = 0.002;
    opts.admission_capacity = 1 + rng.Below(4);
    opts.retry.max_attempts = 1 + static_cast<int>(rng.Below(3));
    opts.retry.initial_backoff_seconds = 1e-4;
    BatchStats stats;
    std::vector<QueryResult> results =
        engine_->CountBatch(queries_, opts, &stats);
    fault::DisarmAll();
    CheckInvariants(results, stats);
    size_t retries = 0;
    for (const QueryResult& r : results) {
      ASSERT_GE(r.attempts, 0);
      ASSERT_LE(r.attempts, opts.retry.max_attempts);
      if (r.attempts > 1) retries += r.attempts - 1;
    }
    EXPECT_EQ(stats.retries, retries);
  }
}

// Bounded-budget soak: a mutation storm, an aggressive background merge
// loop, and mixed-priority query batches all run against one small memory
// budget whose pressure a background thread oscillates across the
// watermarks. Nothing may crash or OOM; every refusal must be the
// sanctioned kind (kResourceExhausted backpressure or a pressure shed);
// and when the dust settles the budget must read exactly zero.
TEST_F(BatchStressTest, BoundedBudgetMutateQuerySoak) {
  const std::string dir = ::testing::TempDir() + "fesia_batch_stress.soak";
  std::filesystem::remove_all(dir);
  store::SnapshotStoreOptions sopts;
  sopts.dir = dir;
  auto store = store::SnapshotStore::Open(sopts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  // Sized so the serving engine (~22 MiB of postings) fits comfortably,
  // the oscillator's swing crosses the high watermark, and a merge
  // candidate occasionally gets refused — which the auto-flush loop must
  // absorb by retrying, not by crashing or losing mutations.
  MemoryBudget budget(96ull << 20, nullptr, "soak");
  {
    store::IndexManager::Options mopts;
    mopts.budget = &budget;
    mopts.mutation_soft_bytes = 4 << 10;
    mopts.mutation_hard_bytes = 64 << 10;
    store::IndexManager mgr(&idx_, &*store, mopts);
    ASSERT_TRUE(mgr.Rebuild().ok());
    ASSERT_TRUE(mgr.OpenMutationLog().ok());
    mgr.StartAutoFlush(0.001);

    std::atomic<bool> stop{false};
    std::thread oscillator([&] {
      ScopedCharge swing(&budget);
      while (!stop.load(std::memory_order_relaxed)) {
        (void)swing.Add(72ull << 20);  // over the watermark (may refuse)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        swing.Release();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });

    std::atomic<uint64_t> accepted{0}, backpressured{0}, bad_refusals{0};
    std::thread mutator([&] {
      Rng rng(0xB0D6E7u);
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<uint32_t> terms;
        for (size_t i = rng.Below(8) + 1; i > 0; --i) {
          terms.push_back(static_cast<uint32_t>(rng.Below(idx_.num_terms())));
        }
        std::sort(terms.begin(), terms.end());
        terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
        Status s = mgr.Upsert(
            static_cast<uint32_t>(rng.Below(idx_.num_docs())),
            std::move(terms));
        if (s.ok()) {
          ++accepted;
        } else if (s.code() == StatusCode::kResourceExhausted) {
          ++backpressured;
        } else {
          ++bad_refusals;
        }
      }
    });

    // Query storm under the oscillating budget: accounting must balance
    // every iteration, and the only non-OK outcomes are pressure sheds
    // (low priority under pressure) — never a crash or a failure.
    for (int iter = 0; iter < 12; ++iter) {
      BatchOptions opts;
      opts.num_threads = 2;
      opts.budget = &budget;
      opts.priority =
          iter % 3 == 0 ? QueryPriority::kLow : QueryPriority::kNormal;
      BatchStats stats;
      std::vector<QueryResult> results =
          mgr.CountBatch(queries_, opts, &stats);
      ASSERT_EQ(results.size(), queries_.size());
      size_t ok = 0, shed = 0;
      for (const QueryResult& r : results) {
        if (r.outcome == QueryOutcome::kOk) {
          ++ok;
        } else {
          ASSERT_EQ(r.outcome, QueryOutcome::kShed);
          ASSERT_EQ(r.status.code(), StatusCode::kUnavailable);
          ASSERT_TRUE(r.pressure_affected);
          ++shed;
        }
      }
      EXPECT_EQ(ok + shed, queries_.size());
      EXPECT_EQ(stats.ok, ok);
      EXPECT_EQ(stats.shed, shed);
      EXPECT_EQ(stats.pressure_shed, shed);
    }

    stop.store(true, std::memory_order_relaxed);
    oscillator.join();
    mutator.join();
    mgr.StopAutoFlush();
    EXPECT_GT(accepted.load(), 0u);
    EXPECT_EQ(bad_refusals.load(), 0u);

    // Quiesced and unpressured, the overlay drains and degraded service
    // ends: a low-priority batch is answered in full and byte-identical
    // to a high-priority one over the same settled view.
    while (!mgr.FlushDelta().ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(mgr.pending_mutations(), 0u);
    EXPECT_EQ(mgr.pending_bytes(), 0u);
    BatchOptions opts;
    opts.num_threads = 2;
    opts.budget = &budget;
    opts.priority = QueryPriority::kLow;
    std::vector<QueryResult> low = mgr.CountBatch(queries_, opts);
    opts.priority = QueryPriority::kHigh;
    std::vector<QueryResult> high = mgr.CountBatch(queries_, opts);
    for (size_t i = 0; i < queries_.size(); ++i) {
      ASSERT_TRUE(low[i].ok());
      ASSERT_TRUE(high[i].ok());
      EXPECT_EQ(low[i].count, high[i].count);
    }
  }
  // Engines, overlay entries, replay windows, merge candidates: every
  // charge released with its owner.
  EXPECT_EQ(budget.used(), 0u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace fesia::index
