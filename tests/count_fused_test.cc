// Count-only kernel family (cache-blocked fused AND+popcount): oracle
// sweep pinning IntersectCountFused byte-identical to IntersectCount at
// every ISA level, across segment widths, strides, skew ratios, bitmap
// scales, and the tiny-small-set wrap cases the blocked sweep must bounce
// to the interleaved path. Labeled "countpath" in ctest; scripts/check.sh
// gates it under default, ASan, and TSan presets.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "datagen/datagen.h"
#include "fesia/auto.h"
#include "fesia/fesia.h"
#include "fesia/backends.h"
#include "test_util.h"

namespace fesia {
namespace {

using ::fesia::datagen::PairWithSelectivity;
using ::fesia::datagen::SetPair;
using ::fesia::testing::AvailableLevels;

// The scalar interleaved pipeline is the correctness root: every fused
// result is compared against it AND against the same-level interleaved
// count, so a divergence is attributable to either the fused sweep or the
// backend in one glance.
void ExpectFusedMatchesEverywhere(const FesiaSet& fa, const FesiaSet& fb,
                                  const char* what) {
  const size_t oracle = IntersectCount(fa, fb, SimdLevel::kScalar);
  for (SimdLevel level : AvailableLevels()) {
    EXPECT_EQ(IntersectCount(fa, fb, level), oracle)
        << what << " interleaved level=" << SimdLevelName(level);
    EXPECT_EQ(IntersectCountFused(fa, fb, level), oracle)
        << what << " fused level=" << SimdLevelName(level);
    EXPECT_EQ(IntersectCountFused(fb, fa, level), oracle)
        << what << " fused swapped level=" << SimdLevelName(level);
  }
}

class CountFusedOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(CountFusedOracleTest, SkewAndSelectivitySweep) {
  struct Shape {
    size_t n1, n2;
    double selectivity;
  };
  const Shape shapes[] = {
      {100, 100, 0.5},     {1000, 1000, 0.03},  {1000, 1000, 1.0},
      {5, 100000, 1.0},    {64, 20000, 0.25},   {3000, 50000, 0.01},
      {20000, 20000, 0.1}, {777, 12000, 0.0},
  };
  uint64_t seed = 1000 + static_cast<uint64_t>(GetParam());
  for (const Shape& sh : shapes) {
    SetPair pair = PairWithSelectivity(sh.n1, sh.n2, sh.selectivity, ++seed);
    FesiaParams p;
    p.segment_bits = GetParam();
    FesiaSet fa = FesiaSet::Build(pair.a, p);
    FesiaSet fb = FesiaSet::Build(pair.b, p);
    ASSERT_EQ(IntersectCount(fa, fb, SimdLevel::kScalar),
              pair.intersection_size);
    ExpectFusedMatchesEverywhere(fa, fb, "sweep");
  }
}

TEST_P(CountFusedOracleTest, StrideAndScaleVariants) {
  uint64_t seed = 2000 + static_cast<uint64_t>(GetParam());
  SetPair pair = PairWithSelectivity(4000, 9000, 0.07, seed);
  for (int stride : {1, 8}) {
    for (double scale : {0.25, 2.0, 64.0}) {
      FesiaParams p;
      p.segment_bits = GetParam();
      p.kernel_stride = stride;
      p.bitmap_scale = scale;
      FesiaSet fa = FesiaSet::Build(pair.a, p);
      FesiaSet fb = FesiaSet::Build(pair.b, p);
      ExpectFusedMatchesEverywhere(fa, fb, "stride/scale");
    }
  }
}

TEST_P(CountFusedOracleTest, TinySmallSetWrapCases) {
  // Sub-chunk small bitmaps (as narrow as one 64-bit word): the fused path
  // must detect them and fall back to the interleaved pipeline, whose
  // SmallChunk tiling handles the wrap. Run under ASan these also prove
  // the wrap never indexes past the small set's offsets.
  for (size_t n_small : {1u, 2u, 3u, 8u}) {
    SetPair pair =
        PairWithSelectivity(n_small, 200000, 1.0, 31 * n_small + 7);
    FesiaParams p;
    p.segment_bits = GetParam();
    FesiaSet fa = FesiaSet::Build(pair.a, p);
    FesiaSet fb = FesiaSet::Build(pair.b, p);
    ASSERT_LT(fa.bitmap_bits(), 512u) << "n_small=" << n_small;
    ASSERT_EQ(IntersectCount(fa, fb, SimdLevel::kScalar),
              pair.intersection_size);
    ExpectFusedMatchesEverywhere(fa, fb, "tiny-wrap");
  }
  // Denser variant: bitmap_scale 2.0 floors the small bitmap at exactly one
  // 64-bit word even at 20 elements, maximizing wrapped collisions.
  for (size_t n_small : {5u, 20u}) {
    SetPair pair =
        PairWithSelectivity(n_small, 100000, 1.0, 41 * n_small + 3);
    FesiaParams p;
    p.segment_bits = GetParam();
    p.bitmap_scale = 2.0;
    FesiaSet fa = FesiaSet::Build(pair.a, p);
    FesiaSet fb = FesiaSet::Build(pair.b, p);
    ASSERT_EQ(fa.bitmap_bits(), 64u) << "n_small=" << n_small;
    ExpectFusedMatchesEverywhere(fa, fb, "tiny-wrap-dense");
  }
  // Partial-overlap variant: wrapped false positives must be pruned, not
  // merely counted consistently.
  SetPair pair = PairWithSelectivity(6, 150000, 0.5, 99);
  FesiaParams p;
  p.segment_bits = GetParam();
  FesiaSet fa = FesiaSet::Build(pair.a, p);
  FesiaSet fb = FesiaSet::Build(pair.b, p);
  ExpectFusedMatchesEverywhere(fa, fb, "tiny-wrap-partial");
}

TEST_P(CountFusedOracleTest, EmptyAndDegenerateInputs) {
  FesiaParams p;
  p.segment_bits = GetParam();
  FesiaSet empty = FesiaSet::Build({}, p);
  FesiaSet one = FesiaSet::Build(std::vector<uint32_t>{42}, p);
  FesiaSet some = FesiaSet::Build(datagen::SortedUniform(5000, 100000, 5), p);
  for (SimdLevel level : AvailableLevels()) {
    EXPECT_EQ(IntersectCountFused(empty, some, level), 0u);
    EXPECT_EQ(IntersectCountFused(some, empty, level), 0u);
    EXPECT_EQ(IntersectCountFused(empty, empty, level), 0u);
    EXPECT_EQ(IntersectCountFused(one, one, level), 1u);
  }
}

TEST_P(CountFusedOracleTest, RangeSlicesSumToFullCount) {
  // count_fused_range over any chunk-aligned partition must sum to the
  // full count — the contract the parallel executor relies on.
  SetPair pair = PairWithSelectivity(8000, 30000, 0.05, 17);
  FesiaParams p;
  p.segment_bits = GetParam();
  FesiaSet fa = FesiaSet::Build(pair.a, p);
  FesiaSet fb = FesiaSet::Build(pair.b, p);
  const uint32_t total_segs = std::max(fa.num_segments(), fb.num_segments());
  for (SimdLevel level : AvailableLevels()) {
    const internal::Backend& backend = internal::GetBackendRaw(level);
    const uint64_t full = backend.count_fused(fa, fb);
    ASSERT_EQ(full, IntersectCount(fa, fb, SimdLevel::kScalar))
        << SimdLevelName(level);
    const uint32_t chunk =
        internal::SegmentChunk(level, p.segment_bits);
    for (uint32_t slices : {2u, 3u, 7u}) {
      uint32_t per =
          ((total_segs / chunk + slices - 1) / slices) * chunk;
      if (per == 0) per = chunk;
      uint64_t sum = 0;
      for (uint32_t begin = 0; begin < total_segs; begin += per) {
        sum += backend.count_fused_range(
            fa, fb, begin, std::min(begin + per, total_segs));
      }
      EXPECT_EQ(sum, full)
          << SimdLevelName(level) << " slices=" << slices;
    }
  }
}

TEST_P(CountFusedOracleTest, AdversarialCollisionShapes) {
  // Monster single-segment runs (beyond every kernel table) and maximal
  // false-positive pairs take the scalar-fallback dispatch inside the
  // fused drain; counts must not move.
  FesiaParams p;
  p.segment_bits = GetParam();
  p.bitmap_scale = 2.0;
  Rng rng(7);
  std::vector<uint32_t> a = testing::RandomSortedRun(600, 1u << 14, rng);
  std::vector<uint32_t> b = testing::RandomSortedRun(500, 1u << 14, rng);
  FesiaSet fa = FesiaSet::Build(a, p);
  FesiaSet fb = FesiaSet::Build(b, p);
  ExpectFusedMatchesEverywhere(fa, fb, "dense-collisions");
}

TEST_P(CountFusedOracleTest, ParallelAndAutoPathsAgree) {
  // The parallel/cancellable wrappers and the auto dispatcher now route
  // count traffic through the fused family; end-to-end counts must match
  // the interleaved oracle for balanced and skewed pairs alike.
  for (auto [n1, n2] : {std::pair<size_t, size_t>{12000, 12000},
                        std::pair<size_t, size_t>{100, 40000}}) {
    SetPair pair = PairWithSelectivity(n1, n2, 0.2, n1 ^ n2);
    FesiaParams p;
    p.segment_bits = GetParam();
    FesiaSet fa = FesiaSet::Build(pair.a, p);
    FesiaSet fb = FesiaSet::Build(pair.b, p);
    EXPECT_EQ(IntersectCountAuto(fa, fb), pair.intersection_size);
    for (size_t threads : {1, 2, 4}) {
      EXPECT_EQ(IntersectCountParallel(fa, fb, threads),
                pair.intersection_size)
          << "threads=" << threads;
    }
    bool stopped = true;
    CancelContext inert;
    EXPECT_EQ(IntersectCountCancellable(fa, fb, inert, SimdLevel::kAuto,
                                        &stopped),
              pair.intersection_size);
    EXPECT_FALSE(stopped);
  }
}

INSTANTIATE_TEST_SUITE_P(SegmentWidths, CountFusedOracleTest,
                         ::testing::Values(8, 16, 32),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "s" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace fesia
