// Startup backend self-check and graceful SIMD degradation.
#include "fesia/backend_health.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datagen/datagen.h"
#include "fesia/fesia.h"
#include "util/fault_injection.h"

namespace fesia {
namespace {

using ::fesia::datagen::PairWithSelectivity;

class BackendHealthTest : public ::testing::Test {
 protected:
  // Each test re-runs the self-check from a clean slate and leaves a
  // healthy cached report behind for the rest of the process.
  void SetUp() override { internal::ResetBackendHealthForTest(); }
  void TearDown() override {
    fault::DisarmAll();
    internal::ResetBackendHealthForTest();
    (void)GetBackendHealth();
  }
};

TEST_F(BackendHealthTest, HealthyMachinePassesAllLevels) {
  const BackendHealth& h = GetBackendHealth();
  EXPECT_EQ(h.detected, DetectSimdLevel());
  EXPECT_EQ(h.effective, h.detected);
  EXPECT_FALSE(h.degraded);
  for (int l = 0; l <= static_cast<int>(h.detected); ++l) {
    EXPECT_TRUE(h.checks[l].healthy) << SimdLevelName(h.checks[l].level);
    EXPECT_EQ(h.checks[l].observed, h.checks[l].expected);
  }
  EXPECT_NE(h.ToString().find("backend health"), std::string::npos);
  EXPECT_EQ(h.ToString().find("DEGRADED"), std::string::npos);
}

TEST_F(BackendHealthTest, ReportIsCached) {
  const BackendHealth& a = GetBackendHealth();
  const BackendHealth& b = GetBackendHealth();
  EXPECT_EQ(&a, &b);
}

TEST_F(BackendHealthTest, InjectedMismatchQuarantinesWidestLevel) {
  if (DetectSimdLevel() == SimdLevel::kScalar) {
    GTEST_SKIP() << "no SIMD backend to quarantine on this host";
  }
  fault::ScopedFault fault(fault::FaultPoint::kBackendDowngrade);
  const BackendHealth& h = GetBackendHealth();
  EXPECT_TRUE(h.degraded);
  EXPECT_LT(static_cast<int>(h.effective), static_cast<int>(h.detected));
  // The widest (dispatch-serving) level is the one quarantined.
  const BackendCheckResult& top = h.checks[static_cast<int>(h.detected)];
  EXPECT_FALSE(top.healthy);
  EXPECT_NE(top.observed, top.expected);
  EXPECT_NE(h.ToString().find("QUARANTINED"), std::string::npos);
  EXPECT_NE(h.ToString().find("DEGRADED"), std::string::npos);
}

TEST_F(BackendHealthTest, DegradedDispatchStaysCorrect) {
  if (DetectSimdLevel() == SimdLevel::kScalar) {
    GTEST_SKIP() << "no SIMD backend to quarantine on this host";
  }
  fault::ScopedFault fault(fault::FaultPoint::kBackendDowngrade);
  SimdLevel effective = EffectiveSimdLevel();
  ASSERT_LT(static_cast<int>(effective),
            static_cast<int>(DetectSimdLevel()));

  // Dispatch is clamped below the quarantined level and still returns
  // exact counts: degradation trades speed, never correctness.
  auto pair = PairWithSelectivity(5000, 5000, 0.2, 31);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  EXPECT_EQ(IntersectCount(fa, fb, SimdLevel::kAuto),
            pair.intersection_size);
  // Asking explicitly for the quarantined level is also clamped.
  EXPECT_EQ(IntersectCount(fa, fb, DetectSimdLevel()),
            pair.intersection_size);
}

TEST_F(BackendHealthTest, ResetRestoresFullDispatch) {
  if (DetectSimdLevel() == SimdLevel::kScalar) {
    GTEST_SKIP() << "no SIMD backend to quarantine on this host";
  }
  {
    fault::ScopedFault fault(fault::FaultPoint::kBackendDowngrade);
    ASSERT_TRUE(GetBackendHealth().degraded);
  }
  internal::ResetBackendHealthForTest();
  EXPECT_FALSE(GetBackendHealth().degraded);
  EXPECT_EQ(EffectiveSimdLevel(), DetectSimdLevel());
}

}  // namespace
}  // namespace fesia
