// The network front door (docs/ROBUSTNESS.md, "Network front door"):
// JSON escaping and golden response lines, the adversarial protocol
// parser suite, the epoch-invalidated result cache (LRU/byte-cap/epoch
// rules), end-to-end socket tests against a live epoll server (including
// truncated, oversized, invalid-UTF-8, slowloris, and mid-batch
// disconnect clients), and the cache-epoch oracle: cached responses must
// be byte-identical to cache-disabled ones across randomized
// serve/mutate/flush/repair interleavings. The concurrent client-vs-flush
// tests are the TSan habitat for the serve path.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "index/inverted_index.h"
#include "index/query_engine.h"
#include "serve/protocol.h"
#include "serve/result_cache.h"
#include "serve/server.h"
#include "shard/shard_map.h"
#include "shard/shard_router.h"
#include "shard/sharded_index.h"
#include "util/json.h"
#include "util/memory_budget.h"
#include "util/status.h"

namespace fesia {
namespace {

namespace fs = std::filesystem;

using ::fesia::index::BatchStats;
using ::fesia::index::InvertedIndex;
using ::fesia::serve::BackendOptions;
using ::fesia::serve::Op;
using ::fesia::serve::ParseLimits;
using ::fesia::serve::ParseRequest;
using ::fesia::serve::Request;
using ::fesia::serve::ResultCache;
using ::fesia::serve::RouterBackend;
using ::fesia::serve::ServeBackend;
using ::fesia::serve::Server;
using ::fesia::serve::ServerOptions;
using ::fesia::serve::WireResult;

// ---------------------------------------------------------------------------
// JSON escaping (the CLI event-line bugfix) and golden response lines.

TEST(JsonEscapeTest, EscapesControlQuotesAndNonAscii) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape("nl\n"), "nl\\n");
  EXPECT_EQ(JsonEscape(std::string("nul\0!", 5)), "nul\\u0000!");
  // Non-ASCII bytes become \u00XX so emitted lines are always pure ASCII
  // regardless of the input encoding.
  EXPECT_EQ(JsonEscape("caf\xc3\xa9"), "caf\\u00c3\\u00a9");
  EXPECT_EQ(JsonQuote("x\"y"), "\"x\\\"y\"");
}

TEST(JsonEscapeTest, DoubleFormattingIsLocaleIndependent) {
  std::string out;
  AppendJsonDouble(out, 0.5);
  EXPECT_EQ(out, "0.5");  // never "0,5", whatever the locale
  out.clear();
  AppendJsonDouble(out, std::numeric_limits<double>::infinity());
  EXPECT_EQ(out, "null");  // non-finite is not valid JSON
  out.clear();
  AppendJsonDouble(out, std::nan(""));
  EXPECT_EQ(out, "null");
}

TEST(ProtocolGoldenTest, ResultLineBytesArePinned) {
  WireResult r;
  r.outcome = index::QueryOutcome::kOk;
  r.count = 42;
  r.shards_answered = 2;
  r.shards_total = 2;
  r.attempts = 1;
  EXPECT_EQ(serve::BuildResultJson(r, Op::kCount),
            "{\"outcome\":\"ok\",\"count\":42,\"shards_answered\":2,"
            "\"shards_total\":2,\"attempts\":1,\"downgraded\":false,"
            "\"pressure_affected\":false}");

  r.docs = {3, 7, 11};
  r.count = 3;
  EXPECT_EQ(serve::BuildResultJson(r, Op::kQuery),
            "{\"outcome\":\"ok\",\"count\":3,\"docs\":[3,7,11],"
            "\"shards_answered\":2,\"shards_total\":2,\"attempts\":1,"
            "\"downgraded\":false,\"pressure_affected\":false}");

  WireResult failed;
  failed.outcome = index::QueryOutcome::kFailed;
  failed.code = StatusCode::kUnavailable;
  failed.shards_total = 2;
  EXPECT_EQ(serve::BuildResultJson(failed, Op::kCount),
            "{\"outcome\":\"failed\",\"code\":\"unavailable\",\"count\":0,"
            "\"shards_answered\":0,\"shards_total\":2,\"attempts\":0,"
            "\"downgraded\":false,\"pressure_affected\":false}");
}

TEST(ProtocolGoldenTest, ErrorLineEscapesMessageAndEchoesId) {
  Request req;
  req.has_id = true;
  req.id = 9;
  const std::string line = serve::BuildErrorLine(
      Status::InvalidArgument("bad \"byte\"\n"), &req);
  EXPECT_EQ(line,
            "{\"ok\":false,\"id\":9,\"error\":{\"code\":\"invalid-argument\","
            "\"message\":\"bad \\\"byte\\\"\\n\"}}\n");
}

// ---------------------------------------------------------------------------
// Adversarial parser suite.

Status Parse(std::string_view line, Request* out,
             ParseLimits limits = ParseLimits{}) {
  return ParseRequest(line, limits, out);
}

TEST(ParseRequestTest, MinimalCountAndQuery) {
  Request req;
  ASSERT_TRUE(Parse(R"({"op":"count","queries":[[1,2],[3]]})", &req).ok());
  EXPECT_EQ(req.op, Op::kCount);
  ASSERT_EQ(req.queries.size(), 2u);
  EXPECT_EQ(req.queries[0], (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(req.queries[1], (std::vector<uint32_t>{3}));
  EXPECT_TRUE(req.use_cache);
  EXPECT_FALSE(req.has_id);

  ASSERT_TRUE(Parse(R"({"op":"query","queries":[[]]})", &req).ok());
  EXPECT_EQ(req.op, Op::kQuery);
  ASSERT_EQ(req.queries.size(), 1u);
  EXPECT_TRUE(req.queries[0].empty());
}

TEST(ParseRequestTest, AllOptionsParse) {
  Request req;
  ASSERT_TRUE(Parse(R"({"op":"count","queries":[[1]],"deadline_ms":50,)"
                    R"("batch_deadline_ms":200,"priority":"high",)"
                    R"("cache":false,"id":77})",
                    &req)
                  .ok());
  EXPECT_DOUBLE_EQ(req.query_deadline_seconds, 0.05);
  EXPECT_DOUBLE_EQ(req.batch_deadline_seconds, 0.2);
  EXPECT_EQ(req.priority, index::QueryPriority::kHigh);
  EXPECT_FALSE(req.use_cache);
  EXPECT_TRUE(req.has_id);
  EXPECT_EQ(req.id, 77u);
}

TEST(ParseRequestTest, UnknownKeysAreSkipped) {
  Request req;
  ASSERT_TRUE(Parse(R"({"op":"count","future":{"a":[1,{"b":null}]},)"
                    R"("queries":[[1]],"note":"hi \u00e9"})",
                    &req)
                  .ok());
  ASSERT_EQ(req.queries.size(), 1u);
}

TEST(ParseRequestTest, EveryTruncationFailsCleanly) {
  const std::string full =
      R"({"op":"count","queries":[[1,22,333]],"deadline_ms":5,"id":3})";
  Request req;
  ASSERT_TRUE(Parse(full, &req).ok());
  // Every proper prefix must be rejected as invalid-argument — never a
  // crash, never a false accept.
  for (size_t n = 0; n < full.size(); ++n) {
    Status s = Parse(full.substr(0, n), &req);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << "prefix len " << n;
  }
}

TEST(ParseRequestTest, MalformedInputsAreRejected) {
  Request req;
  const char* bad[] = {
      "",
      "garbage",
      "[]",
      "{}",                                       // missing op + queries
      R"({"op":"count"})",                        // missing queries
      R"({"queries":[[1]]})",                     // missing op
      R"({"op":"sum","queries":[[1]]})",          // unknown op
      R"({"op":"count","queries":5})",            // wrong type
      R"({"op":"count","queries":[[1]]}x)",       // trailing bytes
      R"({"op":"count","queries":[[1]],})",       // trailing comma
      R"({"op":"count","queries":[[-1]]})",       // negative term
      R"({"op":"count","queries":[[1.5]]})",      // fractional term
      R"({"op":"count","queries":[[1e3]]})",      // exponent term
      R"({"op":"count","queries":[[4294967296]]})",  // > UINT32_MAX
      R"({"op":"count","queries":[[1]],"deadline_ms":-1})",
      R"({"op":"count","queries":[[1]],"priority":"urgent"})",
      R"({"op":"count","queries":[[1]],"id":1.5})",
      R"({"op":"count","queries":[[1]],"cache":"yes"})",
      R"({"op":"count","queries":[[1]],"x":01})",  // from_chars stops at 0
  };
  for (const char* line : bad) {
    EXPECT_EQ(Parse(line, &req).code(), StatusCode::kInvalidArgument)
        << line;
  }
}

TEST(ParseRequestTest, DepthLimitStopsCraftedNesting) {
  std::string line = R"({"op":"count","queries":[[1]],"deep":)";
  for (int i = 0; i < 64; ++i) line += "[";
  for (int i = 0; i < 64; ++i) line += "]";
  line += "}";
  Request req;
  EXPECT_EQ(Parse(line, &req).code(), StatusCode::kInvalidArgument);
}

TEST(ParseRequestTest, LimitsRejectOversizedBatches) {
  ParseLimits limits;
  limits.max_queries = 2;
  limits.max_terms_per_query = 3;
  Request req;
  EXPECT_TRUE(Parse(R"({"op":"count","queries":[[1,2,3],[4]]})", &req,
                    limits)
                  .ok());
  EXPECT_EQ(
      Parse(R"({"op":"count","queries":[[1],[2],[3]]})", &req, limits).code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      Parse(R"({"op":"count","queries":[[1,2,3,4]]})", &req, limits).code(),
      StatusCode::kInvalidArgument);
}

TEST(ParseRequestTest, InvalidUtf8IsRejectedUpfront) {
  Request req;
  std::string line = R"({"op":"count","queries":[[1]],"note":"x)";
  line += '\xff';
  line += "\"}";
  EXPECT_EQ(Parse(line, &req).code(), StatusCode::kInvalidArgument);
  // Overlong encoding of '/' (C0 AF) and an unpaired surrogate byte
  // sequence (ED A0 80) are invalid too.
  std::string overlong = "{\"op\":\"count\",\"queries\":[[1]],\"n\":\"";
  overlong += "\xc0\xaf\"}";
  EXPECT_EQ(Parse(overlong, &req).code(), StatusCode::kInvalidArgument);
  std::string surrogate = "{\"op\":\"count\",\"queries\":[[1]],\"n\":\"";
  surrogate += "\xed\xa0\x80\"}";
  EXPECT_EQ(Parse(surrogate, &req).code(), StatusCode::kInvalidArgument);
}

TEST(ParseRequestTest, EscapeHandling) {
  Request req;
  // Valid surrogate pair and \u escapes in an unknown key's value.
  EXPECT_TRUE(Parse(R"({"op":"count","queries":[[1]],)"
                    R"("n":"\ud83d\ude00 \n \u0041"})",
                    &req)
                  .ok());
  // Unpaired high surrogate escape.
  EXPECT_EQ(Parse(R"({"op":"count","queries":[[1]],"n":"\ud83d"})", &req)
                .code(),
            StatusCode::kInvalidArgument);
  // Lone low surrogate escape.
  EXPECT_EQ(Parse(R"({"op":"count","queries":[[1]],"n":"\ude00"})", &req)
                .code(),
            StatusCode::kInvalidArgument);
  // Invalid escape letter and truncated \u.
  EXPECT_EQ(Parse(R"({"op":"count","queries":[[1]],"n":"\q"})", &req).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse(R"({"op":"count","queries":[[1]],"n":"\u00"})", &req)
                .code(),
            StatusCode::kInvalidArgument);
  // Raw control character inside a string.
  std::string ctl = "{\"op\":\"count\",\"queries\":[[1]],\"n\":\"a\x01b\"}";
  EXPECT_EQ(Parse(ctl, &req).code(), StatusCode::kInvalidArgument);
}

TEST(ParseRequestTest, IdSurvivesLaterParseError) {
  Request req;
  Status s = Parse(R"({"id":42,"op":"count","queries":[[1)", &req);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(req.has_id);
  EXPECT_EQ(req.id, 42u);
  const std::string line = serve::BuildErrorLine(s, &req);
  EXPECT_NE(line.find("\"id\":42"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Result cache.

TEST(ResultCacheTest, HitMissAndEpochRules) {
  ResultCache cache(ResultCache::Options{});
  const std::string key = ResultCache::Key(0, std::vector<uint32_t>{1, 2});
  std::string value;

  EXPECT_FALSE(cache.Lookup(key, 5, &value));
  cache.Insert(key, 5, "payload");
  EXPECT_TRUE(cache.Lookup(key, 5, &value));
  EXPECT_EQ(value, "payload");

  // A newer request epoch means the world changed since the entry was
  // computed: evict on sight.
  EXPECT_FALSE(cache.Lookup(key, 6, &value));
  EXPECT_FALSE(cache.Lookup(key, 6, &value));  // really gone
  EXPECT_EQ(cache.stats().stale_evictions, 1u);

  // An entry from a newer epoch is kept but is not a hit for an older
  // request.
  cache.Insert(key, 8, "newer");
  EXPECT_FALSE(cache.Lookup(key, 7, &value));
  EXPECT_TRUE(cache.Lookup(key, 8, &value));
  EXPECT_EQ(value, "newer");

  // Insert at an older epoch never downgrades an existing newer entry.
  cache.Insert(key, 7, "older");
  EXPECT_TRUE(cache.Lookup(key, 8, &value));
  EXPECT_EQ(value, "newer");
}

TEST(ResultCacheTest, KeyDistinguishesOpAndTermOrder) {
  const std::vector<uint32_t> terms{1, 2};
  const std::vector<uint32_t> swapped{2, 1};
  EXPECT_NE(ResultCache::Key(0, terms), ResultCache::Key(1, terms));
  EXPECT_NE(ResultCache::Key(0, terms), ResultCache::Key(0, swapped));
  EXPECT_EQ(ResultCache::Key(0, terms), ResultCache::Key(0, terms));
}

TEST(ResultCacheTest, LruEvictsColdEntriesUnderByteCap) {
  ResultCache::Options options;
  options.num_shards = 1;  // deterministic: one LRU list
  options.max_bytes = 4 * 1024;
  ResultCache cache(options);
  const std::string big(256, 'x');
  for (uint32_t i = 0; i < 64; ++i) {
    cache.Insert(ResultCache::Key(0, std::vector<uint32_t>{i}), 1, big);
  }
  const serve::ResultCacheStats stats = cache.stats();
  EXPECT_GT(stats.lru_evictions, 0u);
  EXPECT_LE(stats.bytes, options.max_bytes);
  EXPECT_LT(stats.entries, 64u);
  // The most recently inserted key must still be resident.
  std::string value;
  EXPECT_TRUE(cache.Lookup(ResultCache::Key(0, std::vector<uint32_t>{63}), 1,
                           &value));
}

TEST(ResultCacheTest, TouchOnHitProtectsHotEntries) {
  ResultCache::Options options;
  options.num_shards = 1;
  options.max_bytes = 2 * 1024;
  ResultCache cache(options);
  const std::string big(256, 'x');
  const std::string hot_key = ResultCache::Key(0, std::vector<uint32_t>{0});
  cache.Insert(hot_key, 1, big);
  std::string value;
  for (uint32_t i = 1; i < 32; ++i) {
    ASSERT_TRUE(cache.Lookup(hot_key, 1, &value)) << i;  // keep it MRU
    cache.Insert(ResultCache::Key(0, std::vector<uint32_t>{i}), 1, big);
  }
  EXPECT_TRUE(cache.Lookup(hot_key, 1, &value));
}

TEST(ResultCacheTest, BudgetChargesAndReleasesBytes) {
  MemoryBudget budget(1u << 20, nullptr, "cache-test");
  {
    ResultCache::Options options;
    options.budget = &budget;
    ResultCache cache(options);
    cache.Insert(ResultCache::Key(0, std::vector<uint32_t>{1}), 1,
                 std::string(512, 'v'));
    EXPECT_GT(budget.used(), 0u);
    cache.Clear();
    EXPECT_EQ(budget.used(), 0u);
    cache.Insert(ResultCache::Key(0, std::vector<uint32_t>{2}), 1, "v");
    EXPECT_GT(budget.used(), 0u);
  }
  // Destruction returns every charged byte.
  EXPECT_EQ(budget.used(), 0u);
}

TEST(ResultCacheTest, ExhaustedBudgetRefusesInsertGracefully) {
  MemoryBudget budget(64, nullptr, "tiny");  // smaller than any entry
  ResultCache::Options options;
  options.budget = &budget;
  ResultCache cache(options);
  cache.Insert(ResultCache::Key(0, std::vector<uint32_t>{1}), 1,
               std::string(512, 'v'));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_GT(cache.stats().insert_failures, 0u);
  EXPECT_EQ(budget.used(), 0u);
}

TEST(ResultCacheTest, ConcurrentMixedTraffic) {
  ResultCache::Options options;
  options.max_bytes = 64 * 1024;
  ResultCache cache(options);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, &stop, t] {
      std::mt19937 rng(t);
      std::string value;
      for (int i = 0; i < 2000 && !stop.load(); ++i) {
        const uint32_t term = rng() % 64;
        const uint64_t epoch = rng() % 4;
        const std::string key =
            ResultCache::Key(0, std::vector<uint32_t>{term});
        if (rng() % 2 == 0) {
          cache.Insert(key, epoch, "v" + std::to_string(term));
        } else if (cache.Lookup(key, epoch, &value)) {
          ASSERT_EQ(value, "v" + std::to_string(term));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const serve::ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 0u + stats.hits + stats.misses);
}

// ---------------------------------------------------------------------------
// Socket test client.

class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~TestClient() { Close(); }

  bool connected() const { return connected_; }

  bool SendRaw(std::string_view bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool SendLine(std::string line) {
    line += '\n';
    return SendRaw(line);
  }

  /// Blocking read of the next newline-terminated line (newline stripped).
  /// Empty return means the peer closed first.
  std::string ReadLine() {
    while (true) {
      const size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
};

std::string QueriesJson(const std::vector<std::vector<uint32_t>>& queries) {
  std::string out = "[";
  for (size_t q = 0; q < queries.size(); ++q) {
    if (q > 0) out += ',';
    out += '[';
    for (size_t t = 0; t < queries[q].size(); ++t) {
      if (t > 0) out += ',';
      out += std::to_string(queries[q][t]);
    }
    out += ']';
  }
  out += ']';
  return out;
}

/// The deterministic slice of a response line: the results array. The
/// oracle compares these bytes between cached and uncached arms; "stats"
/// (latency) is execution metadata and excluded by design.
std::string ResultsSlice(const std::string& line) {
  const size_t begin = line.find("\"results\":[");
  const size_t end = line.find("],\"stats\":");
  if (begin == std::string::npos || end == std::string::npos) return line;
  return line.substr(begin, end + 1 - begin);
}

// ---------------------------------------------------------------------------
// End-to-end server tests over a memory-only sharded index.

InvertedIndex SmallCorpus(uint64_t seed = 7) {
  index::CorpusParams cp;
  cp.num_docs = 1500;
  cp.num_terms = 120;
  cp.avg_terms_per_doc = 20;
  cp.seed = seed;
  return InvertedIndex::BuildSynthetic(cp);
}

class ServeE2eTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = ServerOptions{},
                   ResultCache* cache = nullptr) {
    idx_ = std::make_unique<InvertedIndex>(SmallCorpus());
    auto sharded = shard::ShardedIndex::Create(
        idx_.get(), shard::ShardMap::Hash(2), shard::ShardedIndexOptions{});
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    sharded_ = std::make_unique<shard::ShardedIndex>(
        std::move(sharded).value());
    ASSERT_TRUE(sharded_->RebuildAll().ok());
    backend_ =
        std::make_unique<RouterBackend>(&*sharded_, RouterBackend::Options{});
    options.cache = cache;
    server_ = std::make_unique<Server>(backend_.get(), options);
    Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  std::unique_ptr<InvertedIndex> idx_;
  std::unique_ptr<shard::ShardedIndex> sharded_;
  std::unique_ptr<RouterBackend> backend_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServeE2eTest, CountsMatchDirectRouter) {
  StartServer();
  std::vector<std::vector<uint32_t>> queries;
  std::mt19937 rng(11);
  for (int q = 0; q < 16; ++q) {
    std::vector<uint32_t> terms;
    for (int t = 0; t < 2 + static_cast<int>(rng() % 3); ++t) {
      terms.push_back(rng() % idx_->num_terms());
    }
    queries.push_back(std::move(terms));
  }
  shard::ShardRouter router(&*sharded_);
  shard::ShardBatchStats stats;
  std::vector<shard::RoutedQueryResult> expected =
      router.CountBatch(queries, shard::RouterOptions{}, &stats);

  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendLine("{\"op\":\"count\",\"queries\":" +
                              QueriesJson(queries) + "}"));
  const std::string line = client.ReadLine();
  ASSERT_NE(line.find("\"ok\":true"), std::string::npos) << line;
  for (const auto& r : expected) {
    EXPECT_NE(line.find("\"count\":" + std::to_string(r.count)),
              std::string::npos)
        << "missing count " << r.count;
  }
  // Spot-check one exact fragment: query 0's full result object.
  WireResult w;
  w.outcome = expected[0].outcome;
  w.count = expected[0].count;
  w.shards_answered = expected[0].shards_answered;
  w.shards_total = expected[0].shards_total;
  w.attempts = expected[0].attempts;
  w.downgraded = expected[0].downgraded;
  w.pressure_affected = expected[0].pressure_affected;
  EXPECT_NE(line.find(serve::BuildResultJson(w, Op::kCount)),
            std::string::npos)
      << line.substr(0, 256);
}

TEST_F(ServeE2eTest, QueryDocsMatchDirectRouter) {
  StartServer();
  const std::vector<std::vector<uint32_t>> queries = {{1, 2}, {5, 9, 13}};
  shard::ShardRouter router(&*sharded_);
  shard::ShardBatchStats stats;
  std::vector<shard::RoutedQueryResult> expected =
      router.QueryBatch(queries, shard::RouterOptions{}, &stats);

  TestClient client(server_->port());
  ASSERT_TRUE(client.SendLine("{\"op\":\"query\",\"queries\":" +
                              QueriesJson(queries) + "}"));
  const std::string line = client.ReadLine();
  ASSERT_NE(line.find("\"ok\":true"), std::string::npos) << line;
  for (const auto& r : expected) {
    std::string docs = "\"docs\":[";
    for (size_t i = 0; i < r.docs.size(); ++i) {
      if (i > 0) docs += ',';
      docs += std::to_string(r.docs[i]);
    }
    docs += ']';
    EXPECT_NE(line.find(docs), std::string::npos);
  }
}

TEST_F(ServeE2eTest, PipelinedRequestsAnswerInOrder) {
  StartServer();
  TestClient client(server_->port());
  std::string burst;
  for (int i = 0; i < 5; ++i) {
    burst += "{\"op\":\"count\",\"queries\":[[1]],\"id\":" +
             std::to_string(100 + i) + "}\n";
  }
  ASSERT_TRUE(client.SendRaw(burst));
  for (int i = 0; i < 5; ++i) {
    const std::string line = client.ReadLine();
    EXPECT_NE(line.find("\"id\":" + std::to_string(100 + i)),
              std::string::npos)
        << "response " << i << ": " << line.substr(0, 128);
  }
}

TEST_F(ServeE2eTest, ParseErrorKeepsConnectionUsable) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_TRUE(client.SendLine("not json"));
  std::string line = client.ReadLine();
  EXPECT_NE(line.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(line.find("invalid-argument"), std::string::npos);
  // The connection survives a parse error; only resource violations close.
  ASSERT_TRUE(client.SendLine(R"({"op":"count","queries":[[1]]})"));
  line = client.ReadLine();
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
  EXPECT_EQ(server_->stats().parse_errors, 1u);
}

TEST_F(ServeE2eTest, BlankAndCrlfLinesAreTolerated) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_TRUE(client.SendRaw("\n\r\n"));
  ASSERT_TRUE(client.SendRaw("{\"op\":\"count\",\"queries\":[[1]]}\r\n"));
  const std::string line = client.ReadLine();
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
}

TEST_F(ServeE2eTest, OversizedLineIsRefusedAndConnectionCloses) {
  ServerOptions options;
  options.max_line_bytes = 128;
  StartServer(options);
  TestClient client(server_->port());
  // An unterminated flood past the cap...
  std::string flood(512, 'a');
  ASSERT_TRUE(client.SendRaw(flood));
  std::string line = client.ReadLine();
  EXPECT_NE(line.find("resource-exhausted"), std::string::npos) << line;
  EXPECT_EQ(client.ReadLine(), "");  // ...then the server hangs up
  EXPECT_EQ(server_->stats().oversized_lines, 1u);

  // ...and a complete-but-huge line (newline included) equally.
  TestClient client2(server_->port());
  std::string huge = "{\"op\":\"count\",\"queries\":[[" +
                     std::string(256, '1') + "]]}";
  ASSERT_TRUE(client2.SendLine(huge));
  line = client2.ReadLine();
  EXPECT_NE(line.find("resource-exhausted"), std::string::npos) << line;
  EXPECT_EQ(client2.ReadLine(), "");
  EXPECT_EQ(server_->stats().oversized_lines, 2u);
}

TEST_F(ServeE2eTest, BudgetRefusalAnswersWithJsonErrorAndCloses) {
  MemoryBudget budget(6 * 1024, nullptr, "serve-test");
  ServerOptions options;
  options.budget = &budget;
  StartServer(options);
  TestClient client(server_->port());
  // 4 KiB connection base charge + a 4 KiB unterminated line cannot fit
  // in 6 KiB: the charge is refused, the client gets a JSON error.
  std::string flood(4096, 'b');
  ASSERT_TRUE(client.SendRaw(flood));
  const std::string line = client.ReadLine();
  EXPECT_NE(line.find("resource-exhausted"), std::string::npos) << line;
  EXPECT_EQ(client.ReadLine(), "");
  EXPECT_GE(server_->stats().budget_refusals, 1u);
  client.Close();
  // Teardown returns every connection byte to the budget.
  for (int i = 0; i < 100 && budget.used() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(budget.used(), 0u);
  // The budget is a test-body local but the fixture destructor runs after
  // it dies: shut down here, while every thread that charged it is still
  // entitled to touch it.
  server_.reset();
  EXPECT_EQ(budget.used(), 0u);
}

TEST_F(ServeE2eTest, RawInvalidUtf8LineIsRejected) {
  StartServer();
  TestClient client(server_->port());
  std::string line = "{\"op\":\"count\",\"queries\":[[1]],\"n\":\"\xff\"}";
  ASSERT_TRUE(client.SendLine(line));
  const std::string resp = client.ReadLine();
  EXPECT_NE(resp.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(resp.find("UTF-8"), std::string::npos) << resp;
}

TEST_F(ServeE2eTest, SlowlorisHalfWritesStillGetOneResponse) {
  StartServer();
  TestClient client(server_->port());
  const std::string line = "{\"op\":\"count\",\"queries\":[[1,2]]}\n";
  // Drip the request a few bytes at a time; the epoll thread buffers
  // without blocking and answers exactly once at the newline.
  for (size_t i = 0; i < line.size(); i += 5) {
    ASSERT_TRUE(client.SendRaw(line.substr(i, 5)));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const std::string resp = client.ReadLine();
  EXPECT_NE(resp.find("\"ok\":true"), std::string::npos) << resp;
  EXPECT_EQ(server_->stats().responses, 1u);
}

// ---------------------------------------------------------------------------
// Mock-backend tests: deadline propagation and disconnect cancellation.

/// Scriptable backend: records the options of every Run, optionally
/// blocking until its cancel token fires (the mid-batch disconnect test).
class MockBackend : public ServeBackend {
 public:
  uint64_t ContentEpoch() const override { return epoch.load(); }

  std::vector<WireResult> Run(Op, std::span<const std::vector<uint32_t>> qs,
                              const BackendOptions& options,
                              BatchStats* stats) override {
    {
      std::lock_guard<std::mutex> lock(mu);
      last_query_deadline = options.query_deadline_seconds;
      last_batch_deadline = options.batch_deadline_seconds;
      last_priority = options.priority;
    }
    runs.fetch_add(1);
    if (block_until_cancel.load()) {
      const auto give_up =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (!options.cancel.cancelled() &&
             std::chrono::steady_clock::now() < give_up) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      saw_cancel.store(options.cancel.cancelled());
      unblocked.fetch_add(1);
    }
    if (stats != nullptr) *stats = BatchStats{};
    std::vector<WireResult> out(qs.size());
    for (size_t i = 0; i < qs.size(); ++i) {
      out[i].count = qs[i].size();
      out[i].shards_answered = 1;
      out[i].shards_total = 1;
      out[i].attempts = 1;
    }
    return out;
  }

  std::mutex mu;
  double last_query_deadline = -1;
  double last_batch_deadline = -1;
  index::QueryPriority last_priority = index::QueryPriority::kNormal;
  std::atomic<uint64_t> epoch{0};
  std::atomic<int> runs{0};
  std::atomic<bool> block_until_cancel{false};
  std::atomic<bool> saw_cancel{false};
  std::atomic<int> unblocked{0};
};

TEST(ServeMockTest, DeadlinesPropagateAndClampIntoBackendOptions) {
  MockBackend backend;
  ServerOptions options;
  options.max_deadline_seconds = 1.0;
  Server server(&backend, options);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  ASSERT_TRUE(client.SendLine(
      R"({"op":"count","queries":[[1]],"deadline_ms":50,)"
      R"("batch_deadline_ms":200,"priority":"low"})"));
  ASSERT_NE(client.ReadLine().find("\"ok\":true"), std::string::npos);
  {
    std::lock_guard<std::mutex> lock(backend.mu);
    EXPECT_DOUBLE_EQ(backend.last_query_deadline, 0.05);
    EXPECT_DOUBLE_EQ(backend.last_batch_deadline, 0.2);
    EXPECT_EQ(backend.last_priority, index::QueryPriority::kLow);
  }

  // A deadline past the server's ceiling is clamped, not honored.
  ASSERT_TRUE(client.SendLine(
      R"({"op":"count","queries":[[1]],"deadline_ms":3600000})"));
  ASSERT_NE(client.ReadLine().find("\"ok\":true"), std::string::npos);
  {
    std::lock_guard<std::mutex> lock(backend.mu);
    EXPECT_DOUBLE_EQ(backend.last_query_deadline, 1.0);
  }
  server.Shutdown();
}

TEST(ServeMockTest, MidBatchDisconnectCancelsInflightWork) {
  MockBackend backend;
  backend.block_until_cancel.store(true);
  Server server(&backend, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  {
    TestClient client(server.port());
    ASSERT_TRUE(client.SendLine(R"({"op":"count","queries":[[1]]})"));
    // Wait until the worker is inside Run, then vanish mid-request.
    for (int i = 0; i < 500 && backend.runs.load() == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_GT(backend.runs.load(), 0);
    client.Close();
  }
  // The epoll thread notices the hangup and cancels the in-flight token;
  // the blocked backend observes it and drains.
  for (int i = 0; i < 2000 && backend.unblocked.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(backend.unblocked.load(), 1);
  EXPECT_TRUE(backend.saw_cancel.load());
  EXPECT_GE(server.stats().cancelled_inflight, 1u);
  server.Shutdown();
}

TEST(ServeMockTest, ShutdownCancelsBlockedWork) {
  MockBackend backend;
  backend.block_until_cancel.store(true);
  Server server(&backend, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  ASSERT_TRUE(client.SendLine(R"({"op":"count","queries":[[1]]})"));
  for (int i = 0; i < 500 && backend.runs.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GT(backend.runs.load(), 0);
  server.Shutdown();  // must not hang on the blocked worker
  EXPECT_EQ(backend.unblocked.load(), 1);
  EXPECT_TRUE(backend.saw_cancel.load());
}

TEST(ServeMockTest, BindFailureReturnsUnavailable) {
  MockBackend backend;
  Server first(&backend, ServerOptions{});
  ASSERT_TRUE(first.Start().ok());
  ServerOptions taken;
  taken.port = first.port();
  Server second(&backend, taken);
  Status started = second.Start();
  EXPECT_EQ(started.code(), StatusCode::kUnavailable);  // CLI exit 8
  first.Shutdown();
}

TEST(ServeMockTest, InvalidBindAddressReturnsUnavailable) {
  MockBackend backend;
  ServerOptions options;
  options.bind_address = "not-an-address";
  Server server(&backend, options);
  EXPECT_EQ(server.Start().code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// Cache-epoch oracle over a store-backed sharded index.

std::string OracleDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "fesia_serve_test." + tag;
  fs::remove_all(dir);
  return dir;
}

class ServeOracleTest : public ::testing::Test {
 protected:
  void Start(const std::string& tag, uint32_t replicas = 1) {
    idx_ = std::make_unique<InvertedIndex>(SmallCorpus(13));
    dir_ = OracleDir(tag);
    shard::ShardedIndexOptions sopts;
    sopts.store_dir = dir_;
    sopts.replication_factor = replicas;
    auto sharded = shard::ShardedIndex::Create(idx_.get(),
                                               shard::ShardMap::Hash(2), sopts);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    sharded_ = std::make_unique<shard::ShardedIndex>(
        std::move(sharded).value());
    ASSERT_TRUE(sharded_->RebuildAll().ok());
    ASSERT_TRUE(sharded_->SaveAll().ok());
    ASSERT_TRUE(sharded_->OpenMutationLogs().ok());
    backend_ =
        std::make_unique<RouterBackend>(&*sharded_, RouterBackend::Options{});
    cache_ = std::make_unique<ResultCache>(ResultCache::Options{});
    ServerOptions options;
    options.cache = cache_.get();
    server_ = std::make_unique<Server>(backend_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
    sharded_.reset();
    if (!dir_.empty()) fs::remove_all(dir_);
  }

  std::unique_ptr<InvertedIndex> idx_;
  std::string dir_;
  std::unique_ptr<shard::ShardedIndex> sharded_;
  std::unique_ptr<RouterBackend> backend_;
  std::unique_ptr<ResultCache> cache_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServeOracleTest, CachedResponsesAreByteIdenticalToUncached) {
  Start("oracle");
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());

  // A small pool of query batches replayed Zipf-style: low indices recur
  // often, so the cache sees real hits between mutations.
  std::vector<std::vector<std::vector<uint32_t>>> pool;
  std::mt19937 rng(29);
  for (int i = 0; i < 8; ++i) {
    std::vector<std::vector<uint32_t>> batch;
    for (int q = 0; q < 3; ++q) {
      std::vector<uint32_t> terms;
      for (int t = 0; t < 2; ++t) terms.push_back(rng() % idx_->num_terms());
      batch.push_back(std::move(terms));
    }
    pool.push_back(std::move(batch));
  }
  auto pick = [&rng, &pool]() -> const std::vector<std::vector<uint32_t>>& {
    // Crude Zipf: halve the index range with probability 1/2 repeatedly.
    size_t i = rng() % pool.size();
    while (i > 0 && rng() % 2 == 0) i /= 2;
    return pool[i];
  };

  for (int step = 0; step < 120; ++step) {
    const int action = rng() % 8;
    if (action < 4) {
      // Serve: the cached arm and the cache-disabled arm must agree to
      // the byte on the results array, whatever happened before.
      const auto& batch = pick();
      const std::string op = (rng() % 2 == 0) ? "count" : "query";
      ASSERT_TRUE(client.SendLine("{\"op\":\"" + op + "\",\"queries\":" +
                                  QueriesJson(batch) + "}"));
      const std::string cached = client.ReadLine();
      ASSERT_TRUE(client.SendLine("{\"op\":\"" + op + "\",\"queries\":" +
                                  QueriesJson(batch) +
                                  ",\"cache\":false}"));
      const std::string uncached = client.ReadLine();
      ASSERT_NE(cached.find("\"ok\":true"), std::string::npos) << cached;
      ASSERT_NE(uncached.find("\"ok\":true"), std::string::npos) << uncached;
      EXPECT_EQ(ResultsSlice(cached), ResultsSlice(uncached))
          << "diverged at step " << step;
    } else if (action < 6) {
      const uint32_t doc = rng() % idx_->num_docs();
      std::vector<uint32_t> terms;
      for (int t = 0; t < 3; ++t) terms.push_back(rng() % idx_->num_terms());
      std::sort(terms.begin(), terms.end());
      terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
      ASSERT_TRUE(sharded_->Upsert(doc, terms).ok());
    } else if (action < 7) {
      ASSERT_TRUE(sharded_->Delete(rng() % idx_->num_docs()).ok());
    } else {
      const uint32_t shard = rng() % sharded_->num_shards();
      Status flushed = sharded_->FlushShard(shard);
      ASSERT_TRUE(flushed.ok()) << flushed.ToString();
    }
  }
  // Zipf replay must have produced real cache traffic, and hits.
  EXPECT_GT(cache_->stats().hits, 0u);
  EXPECT_GT(server_->stats().cache_hits, 0u);
}

TEST_F(ServeOracleTest, MutationInvalidatesCachedResult) {
  Start("invalidate");
  TestClient client(server_->port());

  // Pin a query whose result we can change deterministically: a fresh
  // doc upserted with exactly terms {3, 4}.
  const std::string req = R"({"op":"query","queries":[[3,4]]})";
  ASSERT_TRUE(client.SendLine(req));
  const std::string before = client.ReadLine();
  ASSERT_TRUE(client.SendLine(req));
  const std::string warm = client.ReadLine();
  EXPECT_EQ(ResultsSlice(before), ResultsSlice(warm));  // served from cache

  ASSERT_TRUE(sharded_->Upsert(idx_->num_docs() - 1, {3, 4}).ok());

  ASSERT_TRUE(client.SendLine(req));
  const std::string after = client.ReadLine();
  // The upserted doc must appear: a stale cached reply would miss it.
  EXPECT_NE(ResultsSlice(after), ResultsSlice(before));
  EXPECT_NE(after.find(std::to_string(idx_->num_docs() - 1)),
            std::string::npos)
      << after;

  // And the cached arm agrees with the uncached arm post-mutation.
  ASSERT_TRUE(client.SendLine(
      R"({"op":"query","queries":[[3,4]],"cache":false})"));
  const std::string uncached = client.ReadLine();
  ASSERT_TRUE(client.SendLine(req));
  const std::string cached = client.ReadLine();
  EXPECT_EQ(ResultsSlice(cached), ResultsSlice(uncached));
}

TEST_F(ServeOracleTest, EpochBumpsOnEveryMutationClass) {
  Start("epochs");
  const uint64_t e0 = sharded_->content_epoch();
  ASSERT_TRUE(sharded_->Upsert(1, {1, 2}).ok());
  const uint64_t e1 = sharded_->content_epoch();
  EXPECT_GT(e1, e0);
  ASSERT_TRUE(sharded_->Delete(1).ok());
  const uint64_t e2 = sharded_->content_epoch();
  EXPECT_GT(e2, e1);
  ASSERT_TRUE(sharded_->FlushAll().ok());
  const uint64_t e3 = sharded_->content_epoch();
  EXPECT_GT(e3, e2);
  sharded_->QuarantineShard(0);
  const uint64_t e4 = sharded_->content_epoch();
  EXPECT_NE(e4, e3);
  sharded_->ReviveShard(0);
  EXPECT_NE(sharded_->content_epoch(), e4);
}

TEST_F(ServeOracleTest, ReplicaRepairReviveBumpsEpoch) {
  Start("repair", /*replicas=*/2);
  shard::ReplicaSet* rs = sharded_->replica_set(0);
  ASSERT_NE(rs, nullptr);

  const uint64_t e0 = sharded_->content_epoch();
  rs->QuarantineReplica(1);
  const uint64_t e1 = sharded_->content_epoch();
  EXPECT_NE(e1, e0);  // topology changed: cached results must not survive

  // Mutations land on the surviving replica; repair catches the lagging
  // one up and revives it — another visible content transition.
  for (uint32_t doc = 0; doc < 6; ++doc) {
    Status applied = sharded_->Upsert(doc, {1, 2, 3});
    ASSERT_TRUE(applied.ok()) << applied.ToString();
  }
  const uint64_t e2 = sharded_->content_epoch();
  Status repaired = rs->RepairOnce();
  ASSERT_TRUE(repaired.ok()) << repaired.ToString();
  EXPECT_FALSE(rs->replica_quarantined(1));
  EXPECT_NE(sharded_->content_epoch(), e2);
}

// The TSan habitat: concurrent socket clients against live mutations and
// flushes. Correctness here is "no data race, no torn response": every
// response parses, and cached/uncached arms agree whenever the client
// pins them around no intervening mutation.
TEST_F(ServeOracleTest, ConcurrentClientsVersusMutationsAndFlushes) {
  Start("tsan");
  std::atomic<bool> stop{false};

  std::thread mutator([this, &stop] {
    std::mt19937 rng(101);
    for (int i = 0; i < 60 && !stop.load(); ++i) {
      const uint32_t doc = rng() % idx_->num_docs();
      if (i % 10 == 9) {
        (void)sharded_->FlushShard(rng() % sharded_->num_shards());
      } else if (i % 3 == 0) {
        (void)sharded_->Delete(doc);
      } else {
        (void)sharded_->Upsert(
            doc, {static_cast<uint32_t>(rng() % idx_->num_terms()),
                  static_cast<uint32_t>(rng() % idx_->num_terms())});
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([this, c, &failures] {
      TestClient client(server_->port());
      if (!client.connected()) {
        failures.fetch_add(1);
        return;
      }
      std::mt19937 rng(300 + c);
      for (int i = 0; i < 40; ++i) {
        std::vector<std::vector<uint32_t>> batch{
            {static_cast<uint32_t>(rng() % idx_->num_terms()),
             static_cast<uint32_t>(rng() % idx_->num_terms())}};
        const bool use_cache = rng() % 2 == 0;
        std::string line = "{\"op\":\"count\",\"queries\":" +
                           QueriesJson(batch);
        if (!use_cache) line += ",\"cache\":false";
        line += "}";
        if (!client.SendLine(line)) {
          failures.fetch_add(1);
          return;
        }
        const std::string resp = client.ReadLine();
        if (resp.find("\"ok\":true") == std::string::npos) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true);
  mutator.join();
  EXPECT_EQ(failures.load(), 0);
  const auto stats = server_->stats();
  EXPECT_EQ(stats.responses, stats.requests);
}

}  // namespace
}  // namespace fesia
