// Exhaustive correctness sweeps of the specialized segment kernels: every
// (Sa, Sb) table entry, at every ISA level this host supports, in both the
// unguarded and the guarded (sentinel-masking) variants, against the scalar
// reference. These are the property tests backing the over-read-safety
// argument in kernels_impl.h.
#include "fesia/kernels.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "fesia/backends.h"
#include "test_util.h"
#include "util/cpu.h"

namespace fesia::internal {
namespace {

using ::fesia::testing::RandomSortedRun;
using ::fesia::testing::RefCount;
using ::fesia::testing::ToPaddedBuffer;

const KernelTable& TableFor(SimdLevel level, bool guarded) {
  switch (level) {
    case SimdLevel::kSse:
      return sse::Kernels(guarded);
    case SimdLevel::kAvx2:
      return avx2::Kernels(guarded);
    default:
      return avx512::Kernels(guarded);
  }
}

bool LevelSupported(SimdLevel level) {
  return static_cast<int>(level) <= static_cast<int>(DetectSimdLevel());
}

// Builds a pair of runs of exact sizes (sa, sb) sharing `shared` elements.
std::pair<std::vector<uint32_t>, std::vector<uint32_t>> MakeRuns(
    uint32_t sa, uint32_t sb, uint32_t shared, Rng& rng) {
  shared = std::min({shared, sa, sb});
  // Pool of distinct values split into (shared, a-only, b-only).
  std::vector<uint32_t> pool =
      RandomSortedRun(sa + sb - shared, 1u << 30, rng);
  // Shuffle assignment.
  for (size_t i = pool.size(); i > 1; --i) {
    std::swap(pool[i - 1], pool[rng.Below(i)]);
  }
  std::vector<uint32_t> a(pool.begin(), pool.begin() + sa);
  std::vector<uint32_t> b(pool.begin(), pool.begin() + shared);
  b.insert(b.end(), pool.begin() + sa, pool.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return {std::move(a), std::move(b)};
}

struct KernelCase {
  SimdLevel level;
  bool guarded;
};

std::string CaseName(const ::testing::TestParamInfo<KernelCase>& info) {
  return std::string(SimdLevelName(info.param.level)) +
         (info.param.guarded ? "_guarded" : "_unguarded");
}

class KernelSweepTest : public ::testing::TestWithParam<KernelCase> {
 protected:
  void SetUp() override {
    if (!LevelSupported(GetParam().level)) {
      GTEST_SKIP() << "host lacks " << SimdLevelName(GetParam().level);
    }
  }
};

TEST_P(KernelSweepTest, TableShapeMatchesIsa) {
  const KernelTable& kt = TableFor(GetParam().level, GetParam().guarded);
  EXPECT_EQ(kt.max_size, 2 * kt.lanes);
  EXPECT_EQ(kt.lanes, SimdLanes32(GetParam().level));
  for (size_t i = 0; i < kt.num_entries(); ++i) {
    EXPECT_NE(kt.fns[i], nullptr);
  }
}

TEST_P(KernelSweepTest, ZeroSizedKernelsReturnZero) {
  const KernelTable& kt = TableFor(GetParam().level, GetParam().guarded);
  Rng rng(1);
  std::vector<uint32_t> run = RandomSortedRun(8, 1u << 20, rng);
  auto buf = ToPaddedBuffer(run, 8);
  for (int s = 0; s <= kt.max_size; ++s) {
    EXPECT_EQ(kt.At(0, static_cast<uint32_t>(s))(buf.data(), buf.data()), 0u);
    EXPECT_EQ(kt.At(static_cast<uint32_t>(s), 0)(buf.data(), buf.data()), 0u);
  }
}

// Every (sa, sb) entry, several random overlap levels, exact count.
TEST_P(KernelSweepTest, AllSizePairsMatchScalarReference) {
  const KernelTable& kt = TableFor(GetParam().level, GetParam().guarded);
  Rng rng(42);
  for (uint32_t sa = 1; sa <= static_cast<uint32_t>(kt.max_size); ++sa) {
    for (uint32_t sb = 1; sb <= static_cast<uint32_t>(kt.max_size); ++sb) {
      for (uint32_t trial = 0; trial < 3; ++trial) {
        uint32_t shared =
            static_cast<uint32_t>(rng.Below(std::min(sa, sb) + 1));
        auto [a, b] = MakeRuns(sa, sb, shared, rng);
        auto ba = ToPaddedBuffer(a, sa);
        auto bb = ToPaddedBuffer(b, sb);
        uint32_t expected = RefCount(a, b);
        uint32_t got = kt.At(sa, sb)(ba.data(), bb.data());
        ASSERT_EQ(got, expected)
            << "sa=" << sa << " sb=" << sb << " trial=" << trial;
      }
    }
  }
}

// Guarded kernels must ignore sentinel padding inside the nominal sizes:
// this is the stride>1 layout where both runs end in sentinel slots.
TEST_P(KernelSweepTest, GuardedKernelsIgnoreSentinelPadding) {
  if (!GetParam().guarded) GTEST_SKIP() << "guarded variant only";
  const KernelTable& kt = TableFor(GetParam().level, /*guarded=*/true);
  Rng rng(7);
  for (uint32_t sa = 1; sa <= static_cast<uint32_t>(kt.max_size); ++sa) {
    for (uint32_t sb = 1; sb <= static_cast<uint32_t>(kt.max_size); ++sb) {
      // Real run lengths strictly smaller than the padded sizes.
      uint32_t real_a = 1 + static_cast<uint32_t>(rng.Below(sa));
      uint32_t real_b = 1 + static_cast<uint32_t>(rng.Below(sb));
      uint32_t shared =
          static_cast<uint32_t>(rng.Below(std::min(real_a, real_b) + 1));
      auto [a, b] = MakeRuns(real_a, real_b, shared, rng);
      auto ba = ToPaddedBuffer(a, sa);  // sentinel-fills [real_a, sa)
      auto bb = ToPaddedBuffer(b, sb);
      uint32_t expected = RefCount(a, b);
      uint32_t got = kt.At(sa, sb)(ba.data(), bb.data());
      ASSERT_EQ(got, expected) << "sa=" << sa << " sb=" << sb
                               << " real_a=" << real_a << " real_b=" << real_b;
    }
  }
}

// Guarded kernels remain exact when only ONE side carries sentinel padding
// (kernels may broadcast either side, so the guard must cover both roles).
TEST_P(KernelSweepTest, GuardedExactWithOneSidedPadding) {
  if (!GetParam().guarded) GTEST_SKIP() << "guarded variant only";
  const KernelTable& kt = TableFor(GetParam().level, /*guarded=*/true);
  Rng rng(11);
  for (uint32_t sb = 1; sb <= static_cast<uint32_t>(kt.max_size); ++sb) {
    uint32_t real_b = 1 + static_cast<uint32_t>(rng.Below(sb));
    constexpr uint32_t sa = 5;  // within every ISA's table (SSE max is 8)
    auto [a, b] = MakeRuns(sa, real_b, 2, rng);
    auto ba = ToPaddedBuffer(a, sa);
    auto bb = ToPaddedBuffer(b, sb);  // padding only on one side
    uint32_t expected = RefCount(a, b);
    ASSERT_EQ(kt.At(sa, sb)(ba.data(), bb.data()), expected) << "sb=" << sb;
  }
}

// Identical runs: the kernel must count every element exactly once.
TEST_P(KernelSweepTest, IdenticalRunsCountFully) {
  const KernelTable& kt = TableFor(GetParam().level, GetParam().guarded);
  Rng rng(3);
  for (uint32_t s = 1; s <= static_cast<uint32_t>(kt.max_size); ++s) {
    std::vector<uint32_t> run = RandomSortedRun(s, 1u << 28, rng);
    auto ba = ToPaddedBuffer(run, s);
    auto bb = ToPaddedBuffer(run, s);
    ASSERT_EQ(kt.At(s, s)(ba.data(), bb.data()), s) << "s=" << s;
  }
}

// Disjoint runs: zero matches at every size pair on the diagonal band.
TEST_P(KernelSweepTest, DisjointRunsCountZero) {
  const KernelTable& kt = TableFor(GetParam().level, GetParam().guarded);
  Rng rng(5);
  for (uint32_t s = 1; s <= static_cast<uint32_t>(kt.max_size); ++s) {
    auto [a, b] = MakeRuns(s, s, 0, rng);
    auto ba = ToPaddedBuffer(a, s);
    auto bb = ToPaddedBuffer(b, s);
    ASSERT_EQ(kt.At(s, s)(ba.data(), bb.data()), 0u) << "s=" << s;
  }
}

// Over-read safety: values positioned after the nominal run (as real,
// non-sentinel data, emulating the next segment's elements) must not be
// counted, because they cannot equal any broadcast element in real layouts.
// Here we emulate that by making the trailing values distinct from both runs.
TEST_P(KernelSweepTest, TrailingForeignValuesNotCounted) {
  const KernelTable& kt = TableFor(GetParam().level, GetParam().guarded);
  Rng rng(13);
  uint32_t sa = static_cast<uint32_t>(kt.lanes) - 1;
  uint32_t sb = static_cast<uint32_t>(kt.lanes) / 2;
  auto [a, b] = MakeRuns(sa, sb, 1, rng);
  auto ba = ToPaddedBuffer(a, sa);
  auto bb = ToPaddedBuffer(b, sb);
  // Fill b's tail (the over-read region) with values NOT present in a.
  for (size_t i = sb; i < bb.padded_size(); ++i) {
    bb[i] = 0xF0000000u + static_cast<uint32_t>(i);
  }
  EXPECT_EQ(kt.At(sa, sb)(ba.data(), bb.data()), RefCount(a, b));
}

// Positional coverage: one shared element moved through every (i, j)
// position pair of a V×V kernel must always count exactly 1.
TEST_P(KernelSweepTest, SingleMatchAtEveryPosition) {
  const KernelTable& kt = TableFor(GetParam().level, GetParam().guarded);
  const uint32_t v = static_cast<uint32_t>(kt.lanes);
  for (uint32_t ia = 0; ia < v; ++ia) {
    for (uint32_t jb = 0; jb < v; ++jb) {
      // Disjoint ascending runs...
      std::vector<uint32_t> a, b;
      for (uint32_t x = 0; x < v; ++x) a.push_back(10 + 20 * x);
      for (uint32_t x = 0; x < v; ++x) b.push_back(17 + 20 * x);
      // ...then force b[jb] == a[ia] while keeping both ascending.
      b[jb] = a[ia];
      std::sort(b.begin(), b.end());
      b.erase(std::unique(b.begin(), b.end()), b.end());
      while (b.size() < v) b.push_back(b.back() + 20);
      auto ba = ToPaddedBuffer(a, v);
      auto bb = ToPaddedBuffer(b, v);
      ASSERT_EQ(kt.At(v, v)(ba.data(), bb.data()), 1u)
          << "ia=" << ia << " jb=" << jb;
    }
  }
}

// Both runtime branches of the large-by-large split (a[V-1] <= b[V-1] and
// the symmetric case), with matches on both sides of the split point.
TEST_P(KernelSweepTest, LargeLargeBothBranches) {
  const KernelTable& kt = TableFor(GetParam().level, GetParam().guarded);
  const uint32_t v = static_cast<uint32_t>(kt.lanes);
  const uint32_t size = 2 * v - 1;
  // Branch 1: a's first block finishes first (a values smaller).
  std::vector<uint32_t> a, b;
  for (uint32_t x = 0; x < size; ++x) a.push_back(2 * x + 2);
  for (uint32_t x = 0; x < size; ++x) b.push_back(3 * x + 3);
  auto ba = ToPaddedBuffer(a, size);
  auto bb = ToPaddedBuffer(b, size);
  ASSERT_EQ(kt.At(size, size)(ba.data(), bb.data()), RefCount(a, b));
  // Branch 2: swap sides.
  ASSERT_EQ(kt.At(size, size)(bb.data(), ba.data()), RefCount(a, b));
}

// Extreme representable values (0 and 0xFFFFFFFE) flow through every
// compare correctly; 0xFFFFFFFF is excluded (sentinel).
TEST_P(KernelSweepTest, EdgeValuesZeroAndMax) {
  const KernelTable& kt = TableFor(GetParam().level, GetParam().guarded);
  std::vector<uint32_t> a = {0, 1, 0x7FFFFFFFu, 0xFFFFFFFEu};
  std::vector<uint32_t> b = {0, 2, 0x80000000u, 0xFFFFFFFEu};
  auto ba = ToPaddedBuffer(a, 4);
  auto bb = ToPaddedBuffer(b, 4);
  ASSERT_EQ(kt.At(4, 4)(ba.data(), bb.data()), 2u);  // {0, 0xFFFFFFFE}
}

INSTANTIATE_TEST_SUITE_P(
    AllIsas, KernelSweepTest,
    ::testing::Values(KernelCase{SimdLevel::kSse, false},
                      KernelCase{SimdLevel::kSse, true},
                      KernelCase{SimdLevel::kAvx2, false},
                      KernelCase{SimdLevel::kAvx2, true},
                      KernelCase{SimdLevel::kAvx512, false},
                      KernelCase{SimdLevel::kAvx512, true}),
    CaseName);

// --- Scalar segment primitives -------------------------------------------

TEST(ScalarSegmentTest, CountBasic) {
  std::vector<uint32_t> a = {1, 4, 9};
  std::vector<uint32_t> b = {2, 4, 9, 11};
  EXPECT_EQ(ScalarSegmentCount(a.data(), 3, b.data(), 4), 2u);
}

TEST(ScalarSegmentTest, CountStopsAtDoubleSentinel) {
  std::vector<uint32_t> a = {5, 0xFFFFFFFFu, 0xFFFFFFFFu};
  std::vector<uint32_t> b = {5, 0xFFFFFFFFu, 0xFFFFFFFFu};
  EXPECT_EQ(ScalarSegmentCount(a.data(), 3, b.data(), 3), 1u);
}

TEST(ScalarSegmentTest, IntoWritesMatches) {
  std::vector<uint32_t> a = {1, 4, 9, 12};
  std::vector<uint32_t> b = {4, 12};
  std::vector<uint32_t> out(3);
  EXPECT_EQ(ScalarSegmentInto(a.data(), 4, b.data(), 2, out.data()), 2u);
  EXPECT_EQ(out[0], 4u);
  EXPECT_EQ(out[1], 12u);
}

TEST(ScalarSegmentTest, ProbeFindsPresentKey) {
  std::vector<uint32_t> run = {3, 8, 20};
  EXPECT_TRUE(ScalarProbeRun(run.data(), 3, 8));
  EXPECT_FALSE(ScalarProbeRun(run.data(), 3, 9));
  EXPECT_FALSE(ScalarProbeRun(run.data(), 3, 99));
}

// --- Runtime-size per-ISA helpers -----------------------------------------

class SegmentHelperTest : public ::testing::TestWithParam<SimdLevel> {
 protected:
  void SetUp() override {
    if (!LevelSupported(GetParam())) {
      GTEST_SKIP() << "host lacks " << SimdLevelName(GetParam());
    }
  }
};

TEST_P(SegmentHelperTest, SegmentIntoMatchesReference) {
  const Backend& backend = GetBackend(GetParam());
  Rng rng(17);
  for (uint32_t trial = 0; trial < 50; ++trial) {
    uint32_t sa = 1 + static_cast<uint32_t>(rng.Below(40));
    uint32_t sb = 1 + static_cast<uint32_t>(rng.Below(40));
    uint32_t shared = static_cast<uint32_t>(rng.Below(std::min(sa, sb) + 1));
    auto [a, b] = MakeRuns(sa, sb, shared, rng);
    auto ba = ToPaddedBuffer(a, sa);
    auto bb = ToPaddedBuffer(b, sb);
    std::vector<uint32_t> out(std::min(sa, sb) + 1);
    size_t r = backend.segment_into(ba.data(), sa, bb.data(), sb, out.data());
    std::vector<uint32_t> expected;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expected));
    ASSERT_EQ(r, expected.size());
    for (size_t i = 0; i < r; ++i) ASSERT_EQ(out[i], expected[i]);
  }
}

TEST_P(SegmentHelperTest, ProbeRunMatchesScalar) {
  const Backend& backend = GetBackend(GetParam());
  Rng rng(19);
  std::vector<uint32_t> run = RandomSortedRun(23, 1000, rng);
  auto buf = ToPaddedBuffer(run, 23);
  for (uint32_t key = 0; key < 1000; ++key) {
    bool expected = std::binary_search(run.begin(), run.end(), key);
    ASSERT_EQ(backend.probe_run(buf.data(), 23, key), expected)
        << "key=" << key;
  }
}

INSTANTIATE_TEST_SUITE_P(AllIsas, SegmentHelperTest,
                         ::testing::Values(SimdLevel::kScalar, SimdLevel::kSse,
                                           SimdLevel::kAvx2,
                                           SimdLevel::kAvx512),
                         [](const ::testing::TestParamInfo<SimdLevel>& info) {
                           return SimdLevelName(info.param);
                         });

}  // namespace
}  // namespace fesia::internal
