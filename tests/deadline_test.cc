// Deadline / cancellation primitives for the online query path.
#include "util/deadline.h"

#include <gtest/gtest.h>

#include "util/timer.h"

namespace fesia {
namespace {

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.seconds_left(), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(Deadline::Infinite().infinite());
}

TEST(DeadlineTest, AfterPositiveIsPendingThenExpires) {
  Deadline d = Deadline::After(0.02);
  EXPECT_FALSE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.seconds_left(), 0.0);
  EXPECT_LE(d.seconds_left(), 0.02);
  SleepFor(0.03);
  EXPECT_TRUE(d.expired());
  EXPECT_LE(d.seconds_left(), 0.0);
}

TEST(DeadlineTest, NonPositiveBudgetIsAlreadyExpired) {
  // An exhausted budget means "stop now", not "never stop".
  EXPECT_TRUE(Deadline::After(0).expired());
  EXPECT_TRUE(Deadline::After(-1.5).expired());
  EXPECT_FALSE(Deadline::After(0).infinite());
}

TEST(DeadlineTest, EarliestPrefersTheSoonerDeadline) {
  Deadline inf;
  Deadline near = Deadline::After(0.001);
  Deadline far = Deadline::After(1000);
  EXPECT_TRUE(Deadline::Earliest(inf, inf).infinite());
  // Infinite loses to any finite deadline, in either argument order.
  EXPECT_FALSE(Deadline::Earliest(inf, far).infinite());
  EXPECT_FALSE(Deadline::Earliest(far, inf).infinite());
  Deadline e = Deadline::Earliest(near, far);
  EXPECT_LE(e.seconds_left(), near.seconds_left() + 1e-6);
  e = Deadline::Earliest(far, near);
  EXPECT_LE(e.seconds_left(), near.seconds_left() + 1e-6);
}

TEST(CancellationTokenTest, DefaultTokenIsInert) {
  CancellationToken t;
  EXPECT_FALSE(t.can_cancel());
  EXPECT_FALSE(t.cancelled());
  t.Cancel();  // no-op, must not crash
  EXPECT_FALSE(t.cancelled());
}

TEST(CancellationTokenTest, CopiesShareTheFlag) {
  CancellationToken a = CancellationToken::Create();
  CancellationToken b = a;
  EXPECT_TRUE(a.can_cancel());
  EXPECT_FALSE(a.cancelled());
  EXPECT_FALSE(b.cancelled());
  b.Cancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
}

TEST(CancelContextTest, InertByDefault) {
  CancelContext c;
  EXPECT_FALSE(c.active());
  EXPECT_FALSE(c.ShouldStop());
}

TEST(CancelContextTest, ActiveWithDeadlineOrToken) {
  EXPECT_TRUE(CancelContext(Deadline::After(10)).active());
  EXPECT_TRUE(CancelContext(CancellationToken::Create()).active());
  // An infinite deadline plus a null token is still inert.
  EXPECT_FALSE(CancelContext(Deadline(), CancellationToken()).active());
}

TEST(CancelContextTest, StopsOnEitherCondition) {
  CancellationToken token = CancellationToken::Create();
  CancelContext both(Deadline::After(1000), token);
  EXPECT_FALSE(both.ShouldStop());
  token.Cancel();
  EXPECT_TRUE(both.ShouldStop());

  CancelContext expired(Deadline::After(0));
  EXPECT_TRUE(expired.ShouldStop());
}

TEST(SleepForTest, NonPositiveIsNoop) {
  WallTimer t;
  SleepFor(0);
  SleepFor(-5);
  EXPECT_LT(t.Seconds(), 0.05);
}

TEST(SleepForTest, SleepsAtLeastTheRequestedTime) {
  WallTimer t;
  SleepFor(0.01);
  EXPECT_GE(t.Seconds(), 0.009);
}

}  // namespace
}  // namespace fesia
