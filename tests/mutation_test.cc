// Crash-safe live mutation: WAL framing/replay/quarantine, the delta
// overlay's equivalence with a from-scratch rebuild, the background merge's
// commit/rollback protocol at every fault boundary (kill-point tests), and
// concurrent mutate+query+flush traffic (the TSan habitat for the mutation
// path). docs/ROBUSTNESS.md, "Live mutation, WAL, and merge recovery".
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "index/inverted_index.h"
#include "index/query_engine.h"
#include "shard/shard_map.h"
#include "shard/shard_router.h"
#include "shard/sharded_index.h"
#include "store/index_manager.h"
#include "store/snapshot_store.h"
#include "store/wal.h"
#include "util/fault_injection.h"
#include "util/file_io.h"
#include "util/status.h"

namespace fesia {
namespace {

namespace fs = std::filesystem;

using ::fesia::index::InvertedIndex;
using ::fesia::index::QueryResult;
using ::fesia::store::IndexManager;
using ::fesia::store::SnapshotStore;
using ::fesia::store::SnapshotStoreOptions;
using ::fesia::store::WalRecord;
using ::fesia::store::WalReplayReport;
using ::fesia::store::WriteAheadLog;

// The mutation model the index must always agree with: document -> its
// exact sorted term set. Upsert replaces the entry wholesale, delete
// erases it — the same semantics WalRecord encodes.
using Model = std::map<uint32_t, std::vector<uint32_t>>;

Model ModelFromIndex(const InvertedIndex& idx) {
  Model model;
  for (uint32_t t = 0; t < idx.num_terms(); ++t) {
    for (uint32_t d : idx.Postings(t)) model[d].push_back(t);
  }
  return model;  // terms ascend because t ascends
}

std::vector<std::vector<uint32_t>> PostingsFromModel(const Model& model,
                                                     uint32_t num_terms) {
  std::vector<std::vector<uint32_t>> postings(num_terms);
  for (const auto& [doc, terms] : model) {
    for (uint32_t t : terms) postings[t].push_back(doc);
  }
  return postings;  // docs ascend because the map iterates in doc order
}

WalRecord Upsert(uint64_t seq, uint32_t doc, std::vector<uint32_t> terms) {
  WalRecord r;
  r.seq = seq;
  r.kind = WalRecord::Kind::kUpsert;
  r.doc = doc;
  r.terms = std::move(terms);
  return r;
}

WalRecord Delete(uint64_t seq, uint32_t doc) {
  WalRecord r;
  r.seq = seq;
  r.kind = WalRecord::Kind::kDelete;
  r.doc = doc;
  return r;
}

class MutationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    index::CorpusParams corpus;
    corpus.num_docs = 3000;
    corpus.num_terms = 80;
    corpus.avg_terms_per_doc = 30.0;
    corpus.seed = 11;
    idx_ = InvertedIndex::BuildSynthetic(corpus);
    model_ = ModelFromIndex(idx_);

    dir_ = ::testing::TempDir() + "fesia_mutation_test." +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);

    auto terms = idx_.TermsWithPostingLength(20, 100000);
    ASSERT_GE(terms.size(), 6u);
    for (size_t i = 0; i + 2 < terms.size() && queries_.size() < 12; i += 3) {
      queries_.push_back({terms[i], terms[i + 1]});
      queries_.push_back({terms[i], terms[i + 1], terms[i + 2]});
    }
  }

  void TearDown() override { fault::DisarmAll(); }

  std::unique_ptr<SnapshotStore> OpenStore(const std::string& dir) {
    SnapshotStoreOptions opts;
    opts.dir = dir;
    auto store = SnapshotStore::Open(opts);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    if (!store.ok()) return nullptr;
    return std::make_unique<SnapshotStore>(*std::move(store));
  }

  // The equivalence oracle: manager answers (base engine + overlay) must be
  // byte-identical to an engine rebuilt from scratch over the model.
  void ExpectMatchesModel(const IndexManager& mgr, const Model& model,
                          const std::string& context) {
    InvertedIndex ref_idx = InvertedIndex::FromPostings(
        idx_.num_docs(), PostingsFromModel(model, idx_.num_terms()));
    index::QueryEngine ref(&ref_idx, FesiaParams{});
    index::BatchOptions opts;
    opts.num_threads = 1;
    std::vector<QueryResult> expected = ref.QueryBatch(queries_, opts);
    std::vector<QueryResult> actual = mgr.QueryBatch(queries_, opts);
    std::vector<QueryResult> counted = mgr.CountBatch(queries_, opts);
    ASSERT_EQ(actual.size(), expected.size()) << context;
    for (size_t q = 0; q < expected.size(); ++q) {
      ASSERT_TRUE(expected[q].ok()) << context << " query " << q;
      ASSERT_TRUE(actual[q].ok()) << context << " query " << q;
      EXPECT_EQ(actual[q].count, expected[q].count)
          << context << " query " << q;
      EXPECT_EQ(actual[q].docs, expected[q].docs)
          << context << " query " << q;
      ASSERT_TRUE(counted[q].ok()) << context << " query " << q;
      EXPECT_EQ(counted[q].count, expected[q].count)
          << context << " query " << q;
    }
  }

  // A deterministic pseudo-random term set for mutation workloads.
  std::vector<uint32_t> RandomTerms(std::mt19937_64* rng) {
    std::vector<uint32_t> terms;
    const size_t n = (*rng)() % 11;  // 0..10 terms (0 = clears the doc)
    for (size_t i = 0; i < n; ++i) {
      terms.push_back(static_cast<uint32_t>((*rng)() % idx_.num_terms()));
    }
    std::sort(terms.begin(), terms.end());
    terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
    return terms;
  }

  // Applies `ops` random acked mutations through the manager, mirroring
  // each acknowledgment into *model.
  void MutateRandomly(IndexManager* mgr, Model* model, size_t ops,
                      uint64_t seed) {
    std::mt19937_64 rng(seed);
    for (size_t i = 0; i < ops; ++i) {
      const uint32_t doc = static_cast<uint32_t>(rng() % idx_.num_docs());
      if (rng() % 4 == 0) {
        ASSERT_TRUE(mgr->Delete(doc).ok());
        model->erase(doc);
      } else {
        std::vector<uint32_t> terms = RandomTerms(&rng);
        ASSERT_TRUE(mgr->Upsert(doc, terms).ok());
        (*model)[doc] = std::move(terms);
      }
    }
  }

  std::vector<std::string> QuarantineFiles(const std::string& dir) {
    std::vector<std::string> files;
    if (!fs::exists(dir)) return files;
    for (const auto& entry : fs::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (name.find(".quarantine") != std::string::npos) {
        files.push_back(name);
      }
    }
    std::sort(files.begin(), files.end());
    return files;
  }

  InvertedIndex idx_;
  Model model_;
  std::string dir_;
  std::vector<std::vector<uint32_t>> queries_;
};

// --- WAL unit behavior ----------------------------------------------------

TEST_F(MutationTest, WalAppendReplayRoundTrip) {
  {
    auto wal = WriteAheadLog::Open(dir_);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    ASSERT_TRUE(wal->Append(Upsert(1, 7, {1, 2, 3})).ok());
    ASSERT_TRUE(wal->Append(Delete(2, 9)).ok());
    ASSERT_TRUE(wal->Append(Upsert(5, 7, {})).ok());  // clears the doc
    EXPECT_EQ(wal->last_seq(), 5u);
    EXPECT_EQ(wal->num_segments(), 1u);

    // The validation contract: non-monotonic seq, unsorted terms, and a
    // delete carrying terms are rejected before touching the disk.
    EXPECT_EQ(wal->Append(Upsert(5, 1, {})).code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(wal->Append(Upsert(6, 1, {3, 2})).code(),
              StatusCode::kInvalidArgument);
    WalRecord bad_delete = Delete(6, 1);
    bad_delete.terms = {4};
    EXPECT_EQ(wal->Append(bad_delete).code(), StatusCode::kInvalidArgument);
  }

  std::vector<WalRecord> records;
  WalReplayReport report;
  auto wal = WriteAheadLog::Open(dir_, &records, &report);
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.segments, 1u);
  EXPECT_EQ(report.records, 3u);
  EXPECT_EQ(report.last_seq, 5u);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_EQ(records[0].kind, WalRecord::Kind::kUpsert);
  EXPECT_EQ(records[0].doc, 7u);
  EXPECT_EQ(records[0].terms, (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_EQ(records[1].seq, 2u);
  EXPECT_EQ(records[1].kind, WalRecord::Kind::kDelete);
  EXPECT_TRUE(records[1].terms.empty());
  EXPECT_EQ(records[2].seq, 5u);
  EXPECT_TRUE(records[2].terms.empty());
  EXPECT_EQ(wal->last_seq(), 5u);

  // Appends after a reopen land in a fresh segment past the sealed one.
  ASSERT_TRUE(wal->Append(Upsert(6, 3, {0})).ok());
  EXPECT_EQ(wal->num_segments(), 2u);
}

TEST_F(MutationTest, WalTornTailIsQuarantinedAndTruncated) {
  {
    auto wal = WriteAheadLog::Open(dir_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(Upsert(1, 10, {1})).ok());
    ASSERT_TRUE(wal->Append(Upsert(2, 11, {2})).ok());
    ASSERT_TRUE(wal->Append(Upsert(3, 12, {3})).ok());
  }
  const std::string segment = dir_ + "/wal.000001";
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(segment, &bytes).ok());
  const size_t intact = bytes.size();

  // A crash mid-append leaves a torn tail: garbage after the last frame.
  bytes.insert(bytes.end(), 10, 0xAB);
  ASSERT_TRUE(WriteFileBytes(segment, bytes.data(), bytes.size()).ok());

  std::vector<WalRecord> records;
  WalReplayReport report;
  {
    auto wal = WriteAheadLog::Open(dir_, &records, &report);
    ASSERT_TRUE(wal.ok());
  }
  EXPECT_EQ(report.records, 3u);  // every acked record survives
  EXPECT_EQ(report.last_seq, 3u);
  EXPECT_EQ(report.torn_tail_bytes, 10u);
  EXPECT_EQ(report.quarantined_segments, 1u);
  EXPECT_FALSE(report.clean());
  EXPECT_FALSE(report.ToString().empty());

  // The suspect suffix is copied aside (never deleted) and the segment is
  // truncated back to its valid prefix.
  EXPECT_TRUE(fs::exists(segment + ".quarantine"));
  EXPECT_EQ(fs::file_size(segment), intact);

  // Replay is idempotent: a second open is clean and loses nothing.
  records.clear();
  auto wal2 = WriteAheadLog::Open(dir_, &records, &report);
  ASSERT_TRUE(wal2.ok());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(records.size(), 3u);
  EXPECT_TRUE(fs::exists(segment + ".quarantine"));
}

TEST_F(MutationTest, WalCorruptFrameCutsSuffixButKeepsAckedPrefix) {
  {
    auto wal = WriteAheadLog::Open(dir_);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(Upsert(1, 10, {1})).ok());
    ASSERT_TRUE(wal->Append(Upsert(2, 11, {2})).ok());
    ASSERT_TRUE(wal->Append(Upsert(3, 12, {3})).ok());
  }
  const std::string segment = dir_ + "/wal.000001";
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(segment, &bytes).ok());
  // Flip a payload bit in the middle record: it and everything after is
  // suspect (a frame boundary cannot be trusted past a bad CRC).
  bytes[bytes.size() / 2] ^= 0x01;
  ASSERT_TRUE(WriteFileBytes(segment, bytes.data(), bytes.size()).ok());

  std::vector<WalRecord> records;
  WalReplayReport report;
  auto wal = WriteAheadLog::Open(dir_, &records, &report);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_GT(report.torn_tail_bytes, 0u);
  EXPECT_EQ(report.quarantined_segments, 1u);
  EXPECT_TRUE(fs::exists(segment + ".quarantine"));
}

TEST_F(MutationTest, WalShortWriteFaultPoisonsUntilRotate) {
  auto wal = WriteAheadLog::Open(dir_);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append(Upsert(1, 5, {1, 2})).ok());

  // Injected torn write: half the frame reaches the segment and the append
  // is NOT acknowledged.
  fault::Arm(fault::FaultPoint::kWalAppendShortWrite);
  EXPECT_EQ(wal->Append(Upsert(2, 6, {3})).code(), StatusCode::kIoError);
  fault::DisarmAll();

  // The segment now ends in a tear, so further appends are refused until
  // the segment is sealed (acked records always precede the tear).
  EXPECT_EQ(wal->Append(Upsert(3, 7, {4})).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(wal->Rotate().ok());
  ASSERT_TRUE(wal->Append(Upsert(3, 7, {4})).ok());

  // Replay recovers exactly the acknowledged records: seq 1 and 3, never
  // the unacknowledged seq 2, and quarantines the torn bytes.
  std::vector<WalRecord> records;
  WalReplayReport report;
  wal = WriteAheadLog::Open(dir_, &records, &report);
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_EQ(records[1].seq, 3u);
  EXPECT_EQ(report.quarantined_segments, 1u);
  EXPECT_GT(report.torn_tail_bytes, 0u);
}

TEST_F(MutationTest, WalRotateAndDropThroughRetireOnlySealedSegments) {
  auto wal = WriteAheadLog::Open(dir_);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append(Upsert(1, 1, {})).ok());
  ASSERT_TRUE(wal->Append(Upsert(2, 2, {})).ok());
  ASSERT_TRUE(wal->Rotate().ok());
  ASSERT_TRUE(wal->Append(Upsert(3, 3, {})).ok());
  ASSERT_TRUE(wal->Append(Upsert(4, 4, {})).ok());
  ASSERT_TRUE(wal->Rotate().ok());
  ASSERT_TRUE(wal->Append(Upsert(5, 5, {})).ok());
  EXPECT_EQ(wal->num_segments(), 3u);

  // The crash-before-wal-truncate fault fails the call with every segment
  // intact — the caller's replay-is-idempotent contract absorbs it.
  fault::Arm(fault::FaultPoint::kCrashBeforeWalTruncate);
  EXPECT_EQ(wal->DropThrough(4).code(), StatusCode::kIoError);
  fault::DisarmAll();
  EXPECT_TRUE(fs::exists(dir_ + "/wal.000001"));
  EXPECT_TRUE(fs::exists(dir_ + "/wal.000002"));
  EXPECT_EQ(wal->num_segments(), 3u);

  // A segment is deleted only when every record it holds is <= seq.
  ASSERT_TRUE(wal->DropThrough(3).ok());
  EXPECT_FALSE(fs::exists(dir_ + "/wal.000001"));
  EXPECT_TRUE(fs::exists(dir_ + "/wal.000002"));  // holds seq 4 > 3

  // The active segment is never dropped, whatever the seq.
  ASSERT_TRUE(wal->DropThrough(100).ok());
  EXPECT_FALSE(fs::exists(dir_ + "/wal.000002"));
  EXPECT_TRUE(fs::exists(dir_ + "/wal.000003"));

  std::vector<WalRecord> records;
  auto wal2 = WriteAheadLog::Open(dir_, &records, nullptr);
  ASSERT_TRUE(wal2.ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, 5u);
}

// --- Overlay equivalence --------------------------------------------------

TEST_F(MutationTest, OverlayMatchesFromScratchRebuild) {
  auto store = OpenStore(dir_);
  ASSERT_NE(store, nullptr);
  IndexManager mgr(&idx_, store.get());

  // Mutations require the log; the log cannot be opened twice.
  EXPECT_EQ(mgr.Upsert(0, {1}).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(mgr.Rebuild().ok());
  ASSERT_TRUE(mgr.OpenMutationLog().ok());
  EXPECT_EQ(mgr.OpenMutationLog().code(), StatusCode::kFailedPrecondition);

  // Bounds are validated before anything is logged.
  EXPECT_EQ(mgr.Upsert(idx_.num_docs(), {1}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(mgr.Upsert(0, {idx_.num_terms()}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(mgr.Delete(idx_.num_docs()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(mgr.pending_mutations(), 0u);

  Model model = model_;
  ExpectMatchesModel(mgr, model, "before any mutation");
  MutateRandomly(&mgr, &model, 60, /*seed=*/101);
  EXPECT_GT(mgr.pending_mutations(), 0u);
  ExpectMatchesModel(mgr, model, "after 60 mutations");
  MutateRandomly(&mgr, &model, 60, /*seed=*/102);
  ExpectMatchesModel(mgr, model, "after 120 mutations");

  // Unsorted and duplicated upsert terms are normalized, not rejected.
  ASSERT_TRUE(mgr.Upsert(42, {7, 3, 7, 3}).ok());
  model[42] = {3, 7};
  ExpectMatchesModel(mgr, model, "after unsorted upsert");
}

TEST_F(MutationTest, EmptyAndOutOfRangeQueriesUnaffectedByOverlay) {
  auto store = OpenStore(dir_);
  ASSERT_NE(store, nullptr);
  IndexManager mgr(&idx_, store.get());
  ASSERT_TRUE(mgr.Rebuild().ok());
  ASSERT_TRUE(mgr.OpenMutationLog().ok());
  Model model = model_;
  MutateRandomly(&mgr, &model, 40, /*seed=*/7);

  // Degenerate queries must answer exactly like the bare engine: the
  // overlay may only adjust queries whose terms are all in range.
  std::vector<std::vector<uint32_t>> weird = {
      {},                            // empty conjunction
      {idx_.num_terms()},            // out of range
      {0, idx_.num_terms() + 100},   // partially out of range
  };
  index::QueryEngine bare(&idx_, FesiaParams{});
  index::BatchOptions opts;
  opts.num_threads = 1;
  std::vector<QueryResult> expected = bare.QueryBatch(weird, opts);
  std::vector<QueryResult> actual = mgr.QueryBatch(weird, opts);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t q = 0; q < expected.size(); ++q) {
    EXPECT_EQ(actual[q].ok(), expected[q].ok()) << q;
    EXPECT_EQ(actual[q].count, expected[q].count) << q;
    EXPECT_EQ(actual[q].docs, expected[q].docs) << q;
  }
}

// --- Merge (flush) protocol -----------------------------------------------

TEST_F(MutationTest, FlushCommitsTruncatesAndSurvivesReopen) {
  Model model = model_;
  {
    auto store = OpenStore(dir_);
    ASSERT_NE(store, nullptr);
    IndexManager mgr(&idx_, store.get());
    ASSERT_TRUE(mgr.Rebuild().ok());
    ASSERT_TRUE(mgr.SaveSnapshot().ok());  // generation 1, legacy payload
    ASSERT_TRUE(mgr.OpenMutationLog().ok());

    // Empty flush is a no-op reporting the serving generation.
    uint64_t gen = 0;
    ASSERT_TRUE(mgr.FlushDelta(&gen).ok());
    EXPECT_EQ(gen, 1u);
    EXPECT_EQ(mgr.flushes(), 0u);

    MutateRandomly(&mgr, &model, 80, /*seed=*/201);
    const size_t pending = mgr.pending_mutations();
    ASSERT_GT(pending, 0u);

    ASSERT_TRUE(mgr.FlushDelta(&gen).ok());
    EXPECT_EQ(gen, 2u);
    EXPECT_EQ(mgr.serving_generation(), 2u);
    EXPECT_EQ(mgr.pending_mutations(), 0u);
    EXPECT_EQ(mgr.flushes(), 1u);
    ExpectMatchesModel(mgr, model, "after flush");

    // Post-flush mutations keep overlaying the merged base.
    MutateRandomly(&mgr, &model, 30, /*seed=*/202);
    ExpectMatchesModel(mgr, model, "post-flush mutations");
    ASSERT_TRUE(mgr.FlushDelta(&gen).ok());
    EXPECT_EQ(gen, 3u);
    ExpectMatchesModel(mgr, model, "second flush");
  }

  // The committed WAL records were retired: a fresh log replays nothing.
  {
    WalReplayReport report;
    auto wal = WriteAheadLog::Open(dir_, nullptr, &report);
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ(report.records, 0u);
    EXPECT_EQ(report.last_seq, 0u);
  }

  // A cold reopen serves the merged generation and answers identically.
  auto store = OpenStore(dir_);
  ASSERT_NE(store, nullptr);
  IndexManager mgr(&idx_, store.get());
  ASSERT_TRUE(mgr.Reload().ok());
  EXPECT_EQ(mgr.serving_generation(), 3u);
  WalReplayReport report;
  ASSERT_TRUE(mgr.OpenMutationLog(&report).ok());
  EXPECT_EQ(mgr.pending_mutations(), 0u);
  ExpectMatchesModel(mgr, model, "after cold reopen");

  // And the sequence space continues past the merge point: new mutations
  // replay correctly on the next reopen instead of colliding.
  uint64_t seq = 0;
  ASSERT_TRUE(mgr.Upsert(1, {1}, &seq).ok());
  EXPECT_GT(seq, 100u);  // 110 mutations were merged before
  model[1] = {1};
  ExpectMatchesModel(mgr, model, "post-reopen mutation");
}

TEST_F(MutationTest, RebuildKeepsUnflushedOverlay) {
  auto store = OpenStore(dir_);
  ASSERT_NE(store, nullptr);
  IndexManager mgr(&idx_, store.get());
  ASSERT_TRUE(mgr.Rebuild().ok());
  ASSERT_TRUE(mgr.OpenMutationLog().ok());
  Model model = model_;
  MutateRandomly(&mgr, &model, 25, /*seed=*/33);

  // An offline rebuild publishes the construction-time index again; the
  // unmerged overlay still applies on top of it.
  ASSERT_TRUE(mgr.Rebuild().ok());
  ExpectMatchesModel(mgr, model, "rebuild with pending overlay");
}

// Kill-point sweep: a fault at every boundary of the merge protocol —
// generation write, manifest write (before/after each rename), and the
// final WAL truncation. Whatever the outcome, in-process answers and a
// cold reopen must both equal the model (zero acknowledged-write loss),
// and quarantined debris is never deleted.
TEST_F(MutationTest, FlushKillPointsRecoverWithZeroAckedLoss) {
  struct KillPoint {
    fault::FaultPoint point;
    int skip;
    const char* name;
  };
  const KillPoint kill_points[] = {
      {fault::FaultPoint::kIoShortWrite, 0, "short-write generation"},
      {fault::FaultPoint::kIoShortWrite, 1, "short-write manifest"},
      {fault::FaultPoint::kCrashBeforeRename, 0, "crash before gen rename"},
      {fault::FaultPoint::kCrashBeforeRename, 1,
       "crash before manifest rename"},
      {fault::FaultPoint::kCrashAfterRename, 0, "crash after gen rename"},
      {fault::FaultPoint::kCrashAfterRename, 1,
       "crash after manifest rename (commit durable)"},
      {fault::FaultPoint::kCrashBeforeWalTruncate, 0,
       "crash before wal truncate (commit durable)"},
  };

  for (const KillPoint& kp : kill_points) {
    SCOPED_TRACE(kp.name);
    const std::string dir = dir_ + "." + std::to_string(kp.skip) + "." +
                            fault::FaultPointName(kp.point);
    fs::remove_all(dir);
    Model model = model_;
    bool flush_ok = false;
    {
      auto store = OpenStore(dir);
      ASSERT_NE(store, nullptr);
      IndexManager mgr(&idx_, store.get());
      ASSERT_TRUE(mgr.Rebuild().ok());
      ASSERT_TRUE(mgr.SaveSnapshot().ok());
      ASSERT_TRUE(mgr.OpenMutationLog().ok());
      MutateRandomly(&mgr, &model, 40, /*seed=*/kp.skip + 301);

      fault::Arm(kp.point, kp.skip);
      Status flushed = mgr.FlushDelta();
      fault::DisarmAll();
      flush_ok = flushed.ok();

      // In-process: whether the merge committed, rolled back, or committed
      // but failed to truncate, the serving view equals the model.
      ExpectMatchesModel(mgr, model, std::string("in-process after ") +
                                         kp.name);
      if (!flush_ok) {
        EXPECT_GE(mgr.rollbacks() + mgr.flushes(), 1u);
      }
    }
    const std::vector<std::string> debris = QuarantineFiles(dir);

    // Cold restart: recovery + WAL replay must reconstruct every
    // acknowledged mutation, and a clean flush must then succeed.
    auto store = OpenStore(dir);
    ASSERT_NE(store, nullptr);
    IndexManager mgr(&idx_, store.get());
    ASSERT_TRUE(mgr.Reload().ok());
    ASSERT_TRUE(mgr.OpenMutationLog().ok());
    ExpectMatchesModel(mgr, model, std::string("cold reopen after ") +
                                       kp.name);
    if (flush_ok) {
      // The commit and the truncation both landed: nothing left to replay.
      EXPECT_EQ(mgr.pending_mutations(), 0u);
    }
    Status flushed = mgr.FlushDelta();
    ASSERT_TRUE(flushed.ok()) << flushed.ToString();
    ExpectMatchesModel(mgr, model, std::string("post-recovery flush after ") +
                                       kp.name);
    EXPECT_EQ(mgr.pending_mutations(), 0u);

    // Quarantine is forever: recovery never deletes quarantined bytes.
    const std::vector<std::string> after = QuarantineFiles(dir);
    for (const std::string& f : debris) {
      EXPECT_TRUE(std::find(after.begin(), after.end(), f) != after.end())
          << "quarantined file " << f << " was deleted during recovery";
    }
    fs::remove_all(dir);
  }
}

// Sweep the merge's validation consult points: wherever the candidate's
// decode/deserialize fails, the incumbent engine and the full delta keep
// serving, and the store's serving generation is untouched.
TEST_F(MutationTest, FlushValidationFailureRollsBackToIncumbent) {
  auto store = OpenStore(dir_);
  ASSERT_NE(store, nullptr);
  IndexManager mgr(&idx_, store.get());
  ASSERT_TRUE(mgr.Rebuild().ok());
  ASSERT_TRUE(mgr.SaveSnapshot().ok());
  ASSERT_TRUE(mgr.OpenMutationLog().ok());
  Model model = model_;
  MutateRandomly(&mgr, &model, 30, /*seed=*/401);
  const size_t pending = mgr.pending_mutations();
  auto incumbent = mgr.engine();

  // Deserializing the candidate consults the allocation fault once per
  // decoded array (hundreds for this corpus), so probe a spread of consult
  // points rather than sweeping them all.
  const int probes[] = {0, 1, 2, 3, 5, 8, 13, 21, 34, 55};
  for (int skip : probes) {
    SCOPED_TRACE("skip=" + std::to_string(skip));
    fault::Arm(fault::FaultPoint::kAllocation, skip);
    Status flushed = mgr.FlushDelta();
    fault::DisarmAll();
    if (flushed.ok()) break;  // skip walked past every consult point
    EXPECT_EQ(mgr.engine(), incumbent) << "incumbent was replaced";
    EXPECT_EQ(mgr.pending_mutations(), pending);
    EXPECT_EQ(mgr.serving_generation(), 1u);
    EXPECT_EQ(mgr.flushes(), 0u);
    ExpectMatchesModel(mgr, model, "after rolled-back flush");
  }
  EXPECT_GE(mgr.rollbacks(), 1u);

  // With the faults gone the same delta merges cleanly.
  Status flushed = mgr.FlushDelta();
  ASSERT_TRUE(flushed.ok()) << flushed.ToString();
  EXPECT_EQ(mgr.pending_mutations(), 0u);
  ExpectMatchesModel(mgr, model, "after final successful flush");
}

// --- Concurrency (TSan habitat) -------------------------------------------

// Readers stream query batches while a mutator appends identity upserts
// (each doc's exact current term set, so every intermediate state answers
// identically) and the main thread runs mid-flight merges that hot-swap
// the serving base. Results must stay byte-identical throughout.
TEST_F(MutationTest, ConcurrentMutationsQueriesAndMidFlightFlush) {
  auto store = OpenStore(dir_);
  ASSERT_NE(store, nullptr);
  IndexManager mgr(&idx_, store.get());
  ASSERT_TRUE(mgr.Rebuild().ok());
  ASSERT_TRUE(mgr.SaveSnapshot().ok());
  ASSERT_TRUE(mgr.OpenMutationLog().ok());

  index::QueryEngine ref(&idx_, FesiaParams{});
  index::BatchOptions opts;
  opts.num_threads = 1;
  const std::vector<QueryResult> expected = ref.QueryBatch(queries_, opts);

  std::atomic<bool> stop{false};
  std::atomic<size_t> batches{0};
  std::atomic<size_t> mismatches{0};
  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      index::BatchOptions ropts;
      ropts.num_threads = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<QueryResult> results = mgr.QueryBatch(queries_, ropts);
        for (size_t i = 0; i < results.size(); ++i) {
          if (!results[i].ok() || results[i].count != expected[i].count ||
              results[i].docs != expected[i].docs) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
        batches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::thread mutator([&] {
    std::mt19937_64 rng(77);
    for (int i = 0; i < 200 && !stop.load(std::memory_order_relaxed); ++i) {
      const uint32_t doc = static_cast<uint32_t>(rng() % idx_.num_docs());
      auto it = model_.find(doc);
      std::vector<uint32_t> terms =
          it == model_.end() ? std::vector<uint32_t>{} : it->second;
      Status s = mgr.Upsert(doc, std::move(terms));
      if (!s.ok()) mismatches.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Mid-flight merges while mutations and queries are in full swing.
  size_t flushes_done = 0;
  for (int i = 0; i < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Status s = mgr.FlushDelta();
    if (s.ok()) ++flushes_done;
  }
  mutator.join();
  while (batches.load(std::memory_order_relaxed) < kReaders * 3u) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(batches.load(), 0u);
  EXPECT_GT(flushes_done, 0u);

  // Drain the tail and verify the final state end to end.
  ASSERT_TRUE(mgr.FlushDelta().ok());
  ExpectMatchesModel(mgr, model_, "after concurrent traffic");
}

TEST_F(MutationTest, AutoFlushBackgroundLoop) {
  auto store = OpenStore(dir_);
  ASSERT_NE(store, nullptr);
  IndexManager mgr(&idx_, store.get());
  ASSERT_TRUE(mgr.Rebuild().ok());
  ASSERT_TRUE(mgr.SaveSnapshot().ok());
  ASSERT_TRUE(mgr.OpenMutationLog().ok());
  Model model = model_;

  mgr.StartAutoFlush(0.002);
  MutateRandomly(&mgr, &model, 20, /*seed=*/55);
  // Poll with a generous ceiling so the test cannot flake under load.
  for (int i = 0; i < 4000 && mgr.pending_mutations() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  mgr.StopAutoFlush();
  EXPECT_EQ(mgr.pending_mutations(), 0u);
  EXPECT_GE(mgr.flushes(), 1u);
  ExpectMatchesModel(mgr, model, "after background flush");
  // Start/Stop are idempotent.
  mgr.StopAutoFlush();
  mgr.StartAutoFlush(0.002);
  mgr.StopAutoFlush();
}

// --- Sharded routing ------------------------------------------------------

TEST_F(MutationTest, ShardedMutationRoutingAndIndependentFlush) {
  const shard::ShardMap map = shard::ShardMap::Hash(3);
  shard::ShardedIndexOptions sopts;
  sopts.store_dir = dir_;
  Model model = model_;

  auto RoutedMatchesModel = [&](const shard::ShardedIndex& sharded,
                                const std::string& context) {
    InvertedIndex ref_idx = InvertedIndex::FromPostings(
        idx_.num_docs(), PostingsFromModel(model, idx_.num_terms()));
    index::QueryEngine ref(&ref_idx, FesiaParams{});
    index::BatchOptions bopts;
    bopts.num_threads = 1;
    std::vector<QueryResult> expected = ref.QueryBatch(queries_, bopts);
    shard::ShardRouter router(&sharded);
    shard::RouterOptions ropts;
    ropts.num_threads = 1;
    std::vector<shard::RoutedQueryResult> routed =
        router.QueryBatch(queries_, ropts);
    ASSERT_EQ(routed.size(), expected.size()) << context;
    for (size_t q = 0; q < routed.size(); ++q) {
      ASSERT_TRUE(routed[q].complete()) << context << " query " << q;
      EXPECT_EQ(routed[q].count, expected[q].count)
          << context << " query " << q;
      EXPECT_EQ(routed[q].docs, expected[q].docs)
          << context << " query " << q;
    }
  };

  {
    auto sharded = shard::ShardedIndex::Create(&idx_, map, sopts);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    ASSERT_TRUE(sharded->RebuildAll().ok());
    ASSERT_TRUE(sharded->SaveAll().ok());
    ASSERT_TRUE(sharded->OpenMutationLogs().ok());

    // Mutations land on the shard owning the document.
    std::mt19937_64 rng(501);
    std::vector<uint32_t> touched_docs;
    for (int i = 0; i < 30; ++i) {
      const uint32_t doc = static_cast<uint32_t>(rng() % idx_.num_docs());
      uint32_t owner = 0;
      if (i % 5 == 0) {
        ASSERT_TRUE(sharded->Delete(doc, nullptr, &owner).ok());
        model.erase(doc);
      } else {
        std::vector<uint32_t> terms = RandomTerms(&rng);
        ASSERT_TRUE(sharded->Upsert(doc, terms, nullptr, &owner).ok());
        model[doc] = std::move(terms);
      }
      EXPECT_EQ(owner, map.ShardOf(doc));
      touched_docs.push_back(doc);
    }
    EXPECT_GT(sharded->pending_mutations(), 0u);
    RoutedMatchesModel(*sharded, "overlay across shards");

    // Flushing one shard is independent: its delta drains, the others keep
    // their pending mutations, and routed answers are unchanged.
    const uint32_t flushed_shard = map.ShardOf(touched_docs[0]);
    uint64_t gen = 0;
    ASSERT_TRUE(sharded->FlushShard(flushed_shard, &gen).ok());
    EXPECT_EQ(gen, 2u);
    EXPECT_EQ(sharded->manager(flushed_shard)->pending_mutations(), 0u);
    EXPECT_GT(sharded->pending_mutations(), 0u);
    RoutedMatchesModel(*sharded, "after one-shard flush");

    ASSERT_TRUE(sharded->FlushAll().ok());
    EXPECT_EQ(sharded->pending_mutations(), 0u);
    RoutedMatchesModel(*sharded, "after flush-all");
  }

  // Cold reopen: every shard reloads its merged generation; nothing left
  // to replay.
  auto sharded = shard::ShardedIndex::Create(&idx_, map, sopts);
  ASSERT_TRUE(sharded.ok());
  for (uint32_t s = 0; s < sharded->num_shards(); ++s) {
    ASSERT_TRUE(sharded->ReloadShard(s).ok()) << "shard " << s;
  }
  ASSERT_TRUE(sharded->OpenMutationLogs().ok());
  EXPECT_EQ(sharded->pending_mutations(), 0u);
  RoutedMatchesModel(*sharded, "after cold reopen");
}

}  // namespace
}  // namespace fesia
