// Programmer-error handling: invalid parameters and incompatible pairs
// must fail fast with a FESIA_CHECK abort (the library is exception-free).
#include <gtest/gtest.h>

#include <vector>

#include "fesia/fesia.h"
#include "index/inverted_index.h"
#include "index/query_engine.h"

namespace fesia {
namespace {

TEST(FesiaDeathTest, BuildRejectsInvalidSegmentBits) {
  FesiaParams p;
  p.segment_bits = 12;
  std::vector<uint32_t> v = {1, 2, 3};
  EXPECT_DEATH(FesiaSet::Build(v, p), "FESIA_CHECK");
}

TEST(FesiaDeathTest, BuildRejectsInvalidStride) {
  FesiaParams p;
  p.kernel_stride = 3;
  std::vector<uint32_t> v = {1, 2, 3};
  EXPECT_DEATH(FesiaSet::Build(v, p), "FESIA_CHECK");
}

TEST(FesiaDeathTest, IntersectRejectsMismatchedSegmentBits) {
  FesiaParams p8;
  p8.segment_bits = 8;
  FesiaParams p16;
  p16.segment_bits = 16;
  std::vector<uint32_t> v = {1, 2, 3};
  FesiaSet a = FesiaSet::Build(v, p8);
  FesiaSet b = FesiaSet::Build(v, p16);
  EXPECT_DEATH((void)IntersectCount(a, b), "FESIA_CHECK");
}

TEST(FesiaDeathTest, KWayRejectsMismatchedSegmentBits) {
  FesiaParams p8;
  p8.segment_bits = 8;
  FesiaParams p32;
  p32.segment_bits = 32;
  std::vector<uint32_t> v = {1, 2, 3};
  FesiaSet a = FesiaSet::Build(v, p8);
  FesiaSet b = FesiaSet::Build(v, p32);
  std::vector<const FesiaSet*> sets = {&a, &b};
  EXPECT_DEATH((void)IntersectCountKWay(sets), "FESIA_CHECK");
}

TEST(FesiaDeathTest, KWayRejectsNullSet) {
  std::vector<uint32_t> v = {1, 2, 3};
  FesiaSet a = FesiaSet::Build(v);
  std::vector<const FesiaSet*> sets = {&a, nullptr};
  EXPECT_DEATH((void)IntersectCountKWay(sets), "FESIA_CHECK");
}

TEST(FesiaDeathTest, IntersectIntoRejectsNullOut) {
  std::vector<uint32_t> v = {1, 2, 3};
  FesiaSet a = FesiaSet::Build(v);
  EXPECT_DEATH((void)IntersectInto(a, a, nullptr), "FESIA_CHECK");
}

TEST(FesiaDeathTest, TermSetRejectsOutOfRangeTerm) {
  index::CorpusParams cp;
  cp.num_docs = 500;
  cp.num_terms = 20;
  cp.seed = 3;
  index::InvertedIndex idx = index::InvertedIndex::BuildSynthetic(cp);
  index::QueryEngine engine(&idx, FesiaParams{});
  EXPECT_DEATH((void)engine.TermSet(static_cast<uint32_t>(engine.num_terms())),
               "FESIA_CHECK");
}

}  // namespace
}  // namespace fesia
