// Bitmap-level step semantics: the set of surviving segments must equal
// the hand-computed AND of the two bitmaps, identically at every ISA level
// (the per-ISA NonZeroMask implementations are observationally checked
// through the instrumented pipeline's matched-segment count).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "datagen/datagen.h"
#include "fesia/fesia.h"
#include "fesia/hashing.h"
#include "test_util.h"

namespace fesia {
namespace {

using ::fesia::datagen::PairWithSelectivity;
using ::fesia::datagen::SetPair;
using ::fesia::testing::AvailableLevels;

// Reference step-1: segments of the larger-segment-count set whose s-bit
// window ANDs non-zero with the wrapped window of the smaller one.
uint64_t ReferenceMatchedSegments(const FesiaSet& a, const FesiaSet& b) {
  const FesiaSet& big = a.num_segments() >= b.num_segments() ? a : b;
  const FesiaSet& small = a.num_segments() >= b.num_segments() ? b : a;
  const uint32_t s = static_cast<uint32_t>(big.segment_bits());
  const uint32_t nb_mask = small.num_segments() - 1;
  uint64_t matched = 0;
  for (uint32_t seg = 0; seg < big.num_segments(); ++seg) {
    uint32_t bseg = seg & nb_mask;
    bool any = false;
    for (uint32_t bit = 0; bit < s && !any; ++bit) {
      any = big.TestBit(seg * s + bit) && small.TestBit(bseg * s + bit);
    }
    matched += any;
  }
  return matched;
}

class BitmapStepTest : public ::testing::TestWithParam<int> {};

TEST_P(BitmapStepTest, MatchedSegmentsEqualReferenceAcrossIsas) {
  FesiaParams p;
  p.segment_bits = GetParam();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    SetPair pair = PairWithSelectivity(3000, 3000, 0.05, seed);
    FesiaSet fa = FesiaSet::Build(pair.a, p);
    FesiaSet fb = FesiaSet::Build(pair.b, p);
    uint64_t expected = ReferenceMatchedSegments(fa, fb);
    for (SimdLevel level : AvailableLevels()) {
      IntersectBreakdown bd;
      IntersectCountInstrumented(fa, fb, &bd, level);
      ASSERT_EQ(bd.matched_segments, expected)
          << "seed=" << seed << " level=" << SimdLevelName(level)
          << " s=" << GetParam();
    }
  }
}

TEST_P(BitmapStepTest, MatchedSegmentsWithWrappedBitmaps) {
  FesiaParams p;
  p.segment_bits = GetParam();
  SetPair pair = PairWithSelectivity(200, 30000, 0.4, 11);
  FesiaSet fa = FesiaSet::Build(pair.a, p);
  FesiaSet fb = FesiaSet::Build(pair.b, p);
  ASSERT_NE(fa.num_segments(), fb.num_segments());
  uint64_t expected = ReferenceMatchedSegments(fa, fb);
  for (SimdLevel level : AvailableLevels()) {
    IntersectBreakdown bd;
    IntersectCountInstrumented(fa, fb, &bd, level);
    ASSERT_EQ(bd.matched_segments, expected) << SimdLevelName(level);
  }
}

TEST_P(BitmapStepTest, MatchedSegmentsWithSubChunkSmallBitmap) {
  // Tiny sets get bitmaps as small as one 64-bit word — narrower than one
  // SSE/AVX2/AVX-512 chunk. Step 1 must see the wrapped small segments in
  // every chunk lane (the SmallChunk tiling in intersect_impl.h), not the
  // zero padding behind the real bitmap; a miscount here silently drops
  // matches. Exercises small segment counts from 2 up across all ISAs.
  FesiaParams p;
  p.segment_bits = GetParam();
  for (size_t n_small : {1u, 2u, 4u, 11u}) {
    SetPair pair = PairWithSelectivity(n_small, 50000, 1.0, 29 + n_small);
    FesiaSet fa = FesiaSet::Build(pair.a, p);
    FesiaSet fb = FesiaSet::Build(pair.b, p);
    ASSERT_LT(fa.bitmap_bits(), 512u) << "n_small=" << n_small;
    uint64_t expected = ReferenceMatchedSegments(fa, fb);
    ASSERT_GT(expected, 0u) << "n_small=" << n_small;
    for (SimdLevel level : AvailableLevels()) {
      IntersectBreakdown bd;
      IntersectCountInstrumented(fa, fb, &bd, level);
      ASSERT_EQ(bd.matched_segments, expected)
          << "n_small=" << n_small << " level=" << SimdLevelName(level)
          << " s=" << GetParam();
    }
  }
}

TEST_P(BitmapStepTest, MatchedSegmentsLowerBoundedByTrueMatches) {
  FesiaParams p;
  p.segment_bits = GetParam();
  SetPair pair = PairWithSelectivity(5000, 5000, 0.2, 3);
  FesiaSet fa = FesiaSet::Build(pair.a, p);
  FesiaSet fb = FesiaSet::Build(pair.b, p);
  IntersectBreakdown bd;
  size_t r = IntersectCountInstrumented(fa, fb, &bd);
  ASSERT_EQ(r, pair.intersection_size);
  // Every true match forces its segment pair to survive; several matches
  // can share one segment, hence >= r / max-run-size and <= all segments.
  EXPECT_GT(bd.matched_segments, 0u);
  uint32_t max_run = std::max(fa.ComputeStats().max_segment_size,
                              fb.ComputeStats().max_segment_size);
  EXPECT_GE(bd.matched_segments * max_run, pair.intersection_size);
}

INSTANTIATE_TEST_SUITE_P(SegmentWidths, BitmapStepTest,
                         ::testing::Values(8, 16, 32),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "s" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace fesia
