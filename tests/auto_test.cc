// Strategy auto-selection between FESIAmerge and FESIAhash.
#include "fesia/auto.h"

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "fesia/intersect.h"
#include "test_util.h"

namespace fesia {
namespace {

using ::fesia::datagen::PairWithSelectivity;
using ::fesia::datagen::SetPair;

TEST(AutoStrategyTest, HeavySkewPicksHash) {
  FesiaSet small = FesiaSet::Build(datagen::SortedUniform(100, 100000, 1));
  FesiaSet large = FesiaSet::Build(datagen::SortedUniform(10000, 100000, 2));
  EXPECT_EQ(ChooseStrategy(small, large), IntersectStrategy::kHash);
  EXPECT_EQ(ChooseStrategy(large, small), IntersectStrategy::kHash);
}

TEST(AutoStrategyTest, BalancedSizesPickMerge) {
  FesiaSet a = FesiaSet::Build(datagen::SortedUniform(10000, 100000, 3));
  FesiaSet b = FesiaSet::Build(datagen::SortedUniform(9000, 100000, 4));
  EXPECT_EQ(ChooseStrategy(a, b), IntersectStrategy::kMerge);
}

TEST(AutoStrategyTest, ThresholdBoundary) {
  // skew just below 1/4 -> hash; at or above -> merge.
  FesiaSet n24 = FesiaSet::Build(datagen::SortedUniform(2400, 1u << 20, 5));
  FesiaSet n25 = FesiaSet::Build(datagen::SortedUniform(2500, 1u << 20, 6));
  FesiaSet n10k = FesiaSet::Build(datagen::SortedUniform(10000, 1u << 20, 7));
  EXPECT_EQ(ChooseStrategy(n24, n10k), IntersectStrategy::kHash);
  EXPECT_EQ(ChooseStrategy(n25, n10k), IntersectStrategy::kMerge);
}

TEST(AutoStrategyTest, AutoCountCorrectEitherWay) {
  for (auto [n1, n2] : {std::pair<size_t, size_t>{100, 20000},
                        std::pair<size_t, size_t>{15000, 20000}}) {
    SetPair pair = PairWithSelectivity(n1, n2, 0.3, n1 + n2);
    FesiaSet fa = FesiaSet::Build(pair.a);
    FesiaSet fb = FesiaSet::Build(pair.b);
    EXPECT_EQ(IntersectCountAuto(fa, fb), pair.intersection_size)
        << n1 << "/" << n2;
  }
}

TEST(AutoStrategyTest, EmptyInputsRouteToMergeNotHash) {
  // An empty side used to compute a 0 skew ratio and route into the hash
  // probe path; it must short-circuit instead (merge strategy, count 0).
  FesiaSet empty = FesiaSet::Build({});
  FesiaSet some = FesiaSet::Build(datagen::SortedUniform(1000, 10000, 8));
  EXPECT_EQ(ChooseStrategy(empty, some), IntersectStrategy::kMerge);
  EXPECT_EQ(ChooseStrategy(some, empty), IntersectStrategy::kMerge);
  EXPECT_EQ(ChooseStrategy(empty, empty), IntersectStrategy::kMerge);
}

TEST(AutoStrategyTest, EmptyInputsCountZeroEveryCombination) {
  FesiaSet empty_a = FesiaSet::Build({});
  FesiaSet empty_b = FesiaSet::Build({});
  FesiaSet some = FesiaSet::Build(datagen::SortedUniform(1000, 10000, 8));
  for (SimdLevel level : testing::AvailableLevels()) {
    EXPECT_EQ(IntersectCountAuto(empty_a, some, level), 0u)
        << SimdLevelName(level);
    EXPECT_EQ(IntersectCountAuto(some, empty_a, level), 0u)
        << SimdLevelName(level);
    EXPECT_EQ(IntersectCountAuto(empty_a, empty_b, level), 0u)
        << SimdLevelName(level);
  }
}

}  // namespace
}  // namespace fesia
