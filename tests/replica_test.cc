// Per-shard replication: factor-1 layout/behavior identity, TOPOLOGY
// pinning, durable fan-out under ack policies, failover reads that stay
// byte-identical when a replica is killed or corrupted mid-traffic,
// hedged requests, anti-entropy repair (including the crash kill-point
// sweep proving zero acked-mutation loss), cold-reopen convergence, and
// the background revive-probe / jittered-maintenance loops.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "index/inverted_index.h"
#include "index/query_engine.h"
#include "index/query_gen.h"
#include "shard/replica_set.h"
#include "shard/shard_map.h"
#include "shard/shard_router.h"
#include "shard/sharded_index.h"
#include "util/fault_injection.h"
#include "util/file_io.h"
#include "util/status.h"

namespace fesia {
namespace {

namespace fs = std::filesystem;

using ::fesia::index::InvertedIndex;
using ::fesia::index::QueryResult;
using ::fesia::shard::AckPolicy;
using ::fesia::shard::ReplicaSet;
using ::fesia::shard::RoutedQueryResult;
using ::fesia::shard::RouterOptions;
using ::fesia::shard::ShardBatchStats;
using ::fesia::shard::ShardedIndex;
using ::fesia::shard::ShardedIndexOptions;
using ::fesia::shard::ShardMap;
using ::fesia::shard::ShardRouter;

std::string NewReplicaDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "fesia_replica_test." + tag;
  fs::remove_all(dir);
  return dir;
}

void FlipByteOnDisk(const std::string& path, size_t offset) {
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(path, &bytes).ok()) << path;
  ASSERT_LT(offset, bytes.size());
  bytes[offset] ^= 0xFF;
  ASSERT_TRUE(WriteFileBytes(path, bytes.data(), bytes.size()).ok());
}

// Two routed answers are byte-identical: same completeness, counts, docs.
void ExpectIdentical(const std::vector<RoutedQueryResult>& got,
                     const std::vector<RoutedQueryResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t q = 0; q < got.size(); ++q) {
    EXPECT_TRUE(got[q].ok()) << q << ": " << got[q].status.message();
    EXPECT_TRUE(got[q].complete()) << q;
    EXPECT_EQ(got[q].count, want[q].count) << q;
    EXPECT_EQ(got[q].docs, want[q].docs) << q;
  }
}

class ReplicaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    index::CorpusParams corpus;
    corpus.num_docs = 2000;
    corpus.num_terms = 80;
    corpus.avg_terms_per_doc = 25.0;
    corpus.seed = 31;
    idx_ = InvertedIndex::BuildSynthetic(corpus);
    queries_ = index::LowSelectivityQueries(idx_, 2, 16, 100000, 8, 1.0, 5);
    auto arity3 = index::LowSelectivityQueries(idx_, 3, 16, 100000, 4, 1.0, 6);
    queries_.insert(queries_.end(), arity3.begin(), arity3.end());
    ASSERT_GE(queries_.size(), 10u);
  }

  // Opens a persistent replicated index, rebuilds, saves, and opens the
  // mutation logs of every shard.
  ShardedIndex OpenServing(const std::string& dir, const ShardMap& map,
                           uint32_t replicas,
                           AckPolicy policy = AckPolicy::kAll) {
    ShardedIndexOptions options;
    options.params = params_;
    options.store_dir = dir;
    options.replication_factor = replicas;
    options.ack_policy = policy;
    auto sharded = ShardedIndex::Create(&idx_, map, options);
    EXPECT_TRUE(sharded.ok()) << sharded.status().message();
    EXPECT_TRUE(sharded->RebuildAll().ok());
    EXPECT_TRUE(sharded->SaveAll().ok());
    EXPECT_TRUE(sharded->OpenMutationLogs().ok());
    return *std::move(sharded);
  }

  // A deterministic mutation burst: upserts across the doc space plus a
  // few deletes, routed by the index's shard map.
  void ApplyBurst(ShardedIndex* sharded, uint32_t salt) {
    for (uint32_t i = 0; i < 40; ++i) {
      const uint32_t doc = (i * 97 + salt * 13) % idx_.num_docs();
      std::vector<uint32_t> terms = {i % idx_.num_terms(),
                                     (i * 7 + salt) % idx_.num_terms(),
                                     (i * 31 + 2) % idx_.num_terms()};
      ASSERT_TRUE(sharded->Upsert(doc, terms).ok()) << i;
    }
    for (uint32_t i = 0; i < 8; ++i) {
      const uint32_t doc = (i * 211 + salt * 7) % idx_.num_docs();
      ASSERT_TRUE(sharded->Delete(doc).ok()) << i;
    }
  }

  FesiaParams params_;
  InvertedIndex idx_;
  std::vector<index::Query> queries_;
};

// ---------------------------------------------------------------------------
// Layout and topology pinning

TEST_F(ReplicaTest, FactorOneKeepsLegacyLayout) {
  const std::string dir = NewReplicaDir("legacy-layout");
  {
    ShardedIndex sharded = OpenServing(dir, ShardMap::Hash(2), 1);
    EXPECT_EQ(sharded.replication_factor(), 1u);
    ASSERT_NE(sharded.replica_set(0), nullptr);
    EXPECT_EQ(sharded.replica_set(0)->num_replicas(), 1u);
  }
  // No TOPOLOGY marker, no replica-MM subdirectories: byte-identical to
  // the unreplicated layout, so old stores and new factor-1 stores are
  // interchangeable.
  EXPECT_FALSE(fs::exists(dir + "/TOPOLOGY"));
  EXPECT_TRUE(fs::exists(dir + "/shard-00/snap.000001"));
  EXPECT_FALSE(fs::exists(dir + "/shard-00/replica-00"));
}

TEST_F(ReplicaTest, TopologyPinnedToDirectory) {
  const std::string dir = NewReplicaDir("topology-pin");
  {
    ShardedIndex sharded = OpenServing(dir, ShardMap::Hash(2), 2);
    EXPECT_EQ(sharded.replica_set(0)->num_replicas(), 2u);
  }
  EXPECT_TRUE(fs::exists(dir + "/TOPOLOGY"));
  EXPECT_TRUE(fs::exists(dir + "/shard-00/replica-00/snap.000001"));
  EXPECT_TRUE(fs::exists(dir + "/shard-00/replica-01/snap.000001"));

  ShardedIndexOptions options;
  options.params = params_;
  options.store_dir = dir;
  for (uint32_t wrong : {1u, 3u}) {
    options.replication_factor = wrong;
    auto reopened = ShardedIndex::Create(&idx_, ShardMap::Hash(2), options);
    EXPECT_EQ(reopened.status().code(), StatusCode::kFailedPrecondition)
        << wrong;
  }
  options.replication_factor = 2;
  EXPECT_TRUE(ShardedIndex::Create(&idx_, ShardMap::Hash(2), options).ok());
}

TEST_F(ReplicaTest, LegacyStoreRefusesReplicatedReopen) {
  const std::string dir = NewReplicaDir("legacy-refuse");
  { ShardedIndex sharded = OpenServing(dir, ShardMap::Hash(2), 1); }

  ShardedIndexOptions options;
  options.params = params_;
  options.store_dir = dir;
  options.replication_factor = 2;
  auto reopened = ShardedIndex::Create(&idx_, ShardMap::Hash(2), options);
  EXPECT_EQ(reopened.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ReplicaTest, ZeroReplicationFactorRejected) {
  ShardedIndexOptions options;
  options.params = params_;
  options.store_dir = NewReplicaDir("zero-rf");
  options.replication_factor = 0;
  auto sharded = ShardedIndex::Create(&idx_, ShardMap(), options);
  EXPECT_EQ(sharded.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Fan-out and ack policies

TEST_F(ReplicaTest, FanOutKeepsReplicasInLockstep) {
  const std::string dir = NewReplicaDir("fanout-lockstep");
  ShardedIndex sharded = OpenServing(dir, ShardMap::Hash(2), 2);
  ApplyBurst(&sharded, 1);

  for (uint32_t s = 0; s < 2; ++s) {
    ReplicaSet* rs = sharded.replica_set(s);
    ASSERT_NE(rs, nullptr);
    EXPECT_EQ(rs->serving_replicas(), 2u);
    EXPECT_EQ(rs->replica_durable_seq(0), rs->replica_durable_seq(1)) << s;
    EXPECT_EQ(rs->last_acked_seq(), rs->replica_durable_seq(0)) << s;
  }

  // Either replica alone answers identically: the content is replicated,
  // not just the acknowledgement.
  ShardRouter router(&sharded);
  auto healthy = router.QueryBatch(queries_);
  for (uint32_t victim : {0u, 1u}) {
    for (uint32_t s = 0; s < 2; ++s) {
      sharded.replica_set(s)->QuarantineReplica(victim);
      EXPECT_EQ(sharded.replica_set(s)->serving_replicas(), 1u);
    }
    ExpectIdentical(router.QueryBatch(queries_), healthy);
    for (uint32_t s = 0; s < 2; ++s) {
      sharded.replica_set(s)->ReviveReplica(victim);
    }
  }
}

TEST_F(ReplicaTest, InvalidMutationAbortsWholeGroup) {
  const std::string dir = NewReplicaDir("invalid-abort");
  ShardedIndex sharded = OpenServing(dir, ShardMap(), 2);
  ReplicaSet* rs = sharded.replica_set(0);
  const uint64_t acked_before = rs->last_acked_seq();

  EXPECT_EQ(sharded.Upsert(idx_.num_docs() + 1, {0}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sharded.Upsert(0, {idx_.num_terms() + 1}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sharded.Delete(idx_.num_docs() + 1).code(),
            StatusCode::kInvalidArgument);

  // Nothing durable, no seq consumed, no replica quarantined.
  EXPECT_EQ(rs->last_acked_seq(), acked_before);
  EXPECT_EQ(rs->serving_replicas(), 2u);
  uint64_t seq = 0;
  ASSERT_TRUE(sharded.Upsert(5, {1, 2}, &seq).ok());
  EXPECT_EQ(seq, acked_before + 1);
}

TEST_F(ReplicaTest, QuorumTakesWritesThroughMinorityLoss) {
  const std::string dir = NewReplicaDir("quorum");
  ShardedIndex sharded =
      OpenServing(dir, ShardMap(), 3, AckPolicy::kQuorum);
  ReplicaSet* rs = sharded.replica_set(0);

  // One replica down: 2-of-3 still acks.
  rs->QuarantineReplica(2);
  uint64_t seq = 0;
  ASSERT_TRUE(sharded.Upsert(7, {3, 4}, &seq).ok());
  EXPECT_EQ(rs->last_acked_seq(), seq);

  // Two replicas down: the lone survivor cannot reach quorum — durable
  // there, but explicitly unacknowledged to the caller.
  rs->QuarantineReplica(1);
  Status st = sharded.Upsert(9, {5});
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(rs->last_acked_seq(), seq);

  // Everyone down: no replica can take the write at all.
  rs->QuarantineReplica(0);
  EXPECT_EQ(sharded.Upsert(11, {6}).code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// Failover reads

TEST_F(ReplicaTest, ReplicaKillMidTrafficIsInvisible) {
  const std::string dir = NewReplicaDir("kill-invisible");
  ShardedIndex sharded = OpenServing(dir, ShardMap::Hash(2), 2);
  ApplyBurst(&sharded, 2);
  ShardRouter router(&sharded);
  auto healthy = router.QueryBatch(queries_);

  // Kill (quarantine) one replica per shard mid-traffic: every query must
  // stay complete and byte-identical to the all-healthy answer.
  for (uint32_t s = 0; s < 2; ++s) {
    sharded.replica_set(s)->QuarantineReplica(s % 2);
  }
  ShardBatchStats stats;
  auto degraded = router.QueryBatch(queries_, {}, &stats);
  ExpectIdentical(degraded, healthy);
  EXPECT_EQ(stats.complete_queries, queries_.size());
  EXPECT_EQ(stats.partial_queries, 0u);
}

TEST_F(ReplicaTest, CorruptReplicaNeverPollutesAnswers) {
  const std::string dir = NewReplicaDir("corrupt-replica");
  ShardedIndex sharded = OpenServing(dir, ShardMap(), 2);
  ApplyBurst(&sharded, 3);
  ShardRouter router(&sharded);
  auto healthy = router.QueryBatch(queries_);

  // Rot replica 0's only generation on disk, then force a reload: the
  // reload fails, the incumbent engine keeps serving (rollback), and
  // every answer stays byte-identical.
  FlipByteOnDisk(dir + "/shard-00/replica-00/snap.000001", 100);
  EXPECT_FALSE(sharded.replica_set(0)->Reload().ok());
  EXPECT_FALSE(sharded.replica_set(0)->replica_status(0).ok());
  ExpectIdentical(router.QueryBatch(queries_), healthy);

  // Repair re-syncs the damaged store from the healthy peer without
  // operator intervention beyond the sweep call.
  ASSERT_TRUE(sharded.replica_set(0)->RepairReplica(0).ok());
  ExpectIdentical(router.QueryBatch(queries_), healthy);
}

TEST_F(ReplicaTest, HedgedRequestsStayGolden) {
  const std::string dir = NewReplicaDir("hedged");
  ShardedIndex sharded = OpenServing(dir, ShardMap::Hash(2), 2);
  ApplyBurst(&sharded, 4);
  ShardRouter router(&sharded);
  auto healthy = router.QueryBatch(queries_);

  RouterOptions hedge;
  hedge.hedge_delay_seconds = 1e-9;  // hedge virtually every sub-batch
  // A hedge is only issued when the primary has not answered within the
  // delay, so a fast-enough primary legitimately yields zero hedges for
  // one batch; repeat until at least one fires. Content must be golden
  // on every round, hedged or not.
  size_t hedged = 0, hedge_wins = 0;
  for (int round = 0; round < 50 && hedged == 0; ++round) {
    ShardBatchStats stats;
    ExpectIdentical(router.QueryBatch(queries_, hedge, &stats), healthy);
    hedged += stats.hedged_requests;
    hedge_wins += stats.hedge_wins;
  }
  EXPECT_GE(hedged, 1u);
  EXPECT_LE(hedge_wins, hedged);

  // Failover disabled changes availability policy, never content.
  RouterOptions no_failover;
  no_failover.replica_failover = false;
  ExpectIdentical(router.QueryBatch(queries_, no_failover), healthy);
}

// ---------------------------------------------------------------------------
// Anti-entropy repair

TEST_F(ReplicaTest, RepairResyncsLaggingReplica) {
  const std::string dir = NewReplicaDir("repair-lag");
  ShardedIndex sharded = OpenServing(dir, ShardMap(), 2);
  ShardRouter router(&sharded);
  ApplyBurst(&sharded, 5);
  auto healthy = router.QueryBatch(queries_);

  // Replica 1 misses a burst while quarantined.
  ReplicaSet* rs = sharded.replica_set(0);
  rs->QuarantineReplica(1);
  ApplyBurst(&sharded, 6);
  auto advanced = router.QueryBatch(queries_);
  EXPECT_LT(rs->replica_durable_seq(1), rs->last_acked_seq());
  EXPECT_TRUE(rs->NeedsRepair(1));
  EXPECT_FALSE(rs->NeedsRepair(0));

  ASSERT_TRUE(sharded.RepairOnce().ok());
  EXPECT_FALSE(rs->replica_quarantined(1));
  EXPECT_EQ(rs->replica_durable_seq(1), rs->last_acked_seq());
  EXPECT_EQ(rs->repairs(), 1u);

  // The repaired replica serves the full acked history on its own.
  rs->QuarantineReplica(0);
  ExpectIdentical(router.QueryBatch(queries_), advanced);
}

TEST_F(ReplicaTest, RepairSurvivesSourceFlushMidStream) {
  const std::string dir = NewReplicaDir("repair-flush-race");
  ShardedIndex sharded = OpenServing(dir, ShardMap(), 2);
  ShardRouter router(&sharded);
  ReplicaSet* rs = sharded.replica_set(0);
  rs->QuarantineReplica(1);
  ApplyBurst(&sharded, 7);
  // The healthy replica merges its delta before repair runs: the gap now
  // lives in a newer generation, not the overlay, so the repair must copy
  // the snapshot rather than relying on WAL catch-up alone.
  ASSERT_TRUE(sharded.FlushShard(0).ok());
  auto expect = router.QueryBatch(queries_);

  ASSERT_TRUE(rs->RepairOnce().ok());
  EXPECT_EQ(rs->serving_replicas(), 2u);
  rs->QuarantineReplica(0);
  ExpectIdentical(router.QueryBatch(queries_), expect);
}

TEST_F(ReplicaTest, RepairKillPointSweepLosesNoAckedMutation) {
  // Crash the repair at every protocol step (plus the atomic-write crash
  // points inside the snapshot import): each attempt must fail cleanly
  // with the replica still quarantined, the next attempt must converge,
  // and a cold reopen must serve every acknowledged mutation.
  const fault::FaultPoint kill_points[] = {
      fault::FaultPoint::kRepairCrashBeforeImport,
      fault::FaultPoint::kRepairCrashBeforeCatchup,
      fault::FaultPoint::kRepairCrashBeforeRevive,
      fault::FaultPoint::kIoShortWrite,
      fault::FaultPoint::kCrashBeforeRename,
      fault::FaultPoint::kCrashAfterRename,
  };
  for (fault::FaultPoint point : kill_points) {
    SCOPED_TRACE(fault::FaultPointName(point));
    const std::string dir =
        NewReplicaDir(std::string("kill-") + fault::FaultPointName(point));
    std::vector<RoutedQueryResult> expect;
    {
      ShardedIndex sharded = OpenServing(dir, ShardMap(), 2);
      ShardRouter router(&sharded);
      ReplicaSet* rs = sharded.replica_set(0);
      rs->QuarantineReplica(1);
      ApplyBurst(&sharded, 8);
      ASSERT_TRUE(sharded.FlushShard(0).ok());  // force a snapshot copy
      expect = router.QueryBatch(queries_);

      const uint64_t failures_before = rs->repair_failures();
      {
        fault::ScopedFault crash(point);
        EXPECT_FALSE(rs->RepairReplica(1).ok());
      }
      EXPECT_TRUE(rs->replica_quarantined(1));
      EXPECT_GT(rs->repair_failures(), failures_before);
      EXPECT_FALSE(rs->replica_status(1).ok());
      // Mid-repair debris never pollutes served answers.
      ExpectIdentical(router.QueryBatch(queries_), expect);

      // The next cycle completes idempotently over the debris.
      ASSERT_TRUE(rs->RepairReplica(1).ok());
      EXPECT_EQ(rs->serving_replicas(), 2u);
      EXPECT_EQ(rs->replica_durable_seq(1), rs->last_acked_seq());
      rs->QuarantineReplica(0);
      ExpectIdentical(router.QueryBatch(queries_), expect);
    }

    // Cold reopen: both replicas recover every acknowledged mutation.
    ShardedIndexOptions options;
    options.params = params_;
    options.store_dir = dir;
    options.replication_factor = 2;
    auto reopened = ShardedIndex::Create(&idx_, ShardMap(), options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().message();
    ASSERT_TRUE(reopened->ReloadShard(0).ok());
    ASSERT_TRUE(reopened->OpenMutationLogs().ok());
    ShardRouter router(&*reopened);
    for (uint32_t solo : {0u, 1u}) {
      ReplicaSet* rs = reopened->replica_set(0);
      if (rs->replica_quarantined(solo)) {
        ASSERT_TRUE(rs->RepairReplica(solo).ok());
      }
      rs->QuarantineReplica(1 - solo);
      ExpectIdentical(router.QueryBatch(queries_), expect);
      rs->ReviveReplica(1 - solo);
    }
  }
}

TEST_F(ReplicaTest, ColdReopenQuarantinesTrailingReplicaUntilRepaired) {
  const std::string dir = NewReplicaDir("cold-trailing");
  std::vector<RoutedQueryResult> expect;
  {
    ShardedIndex sharded = OpenServing(dir, ShardMap(), 2);
    ShardRouter router(&sharded);
    ApplyBurst(&sharded, 9);
    // Replica 1 goes dark; the group keeps acking on replica 0 alone.
    sharded.replica_set(0)->QuarantineReplica(1);
    ApplyBurst(&sharded, 10);
    expect = router.QueryBatch(queries_);
  }

  ShardedIndexOptions options;
  options.params = params_;
  options.store_dir = dir;
  options.replication_factor = 2;
  auto reopened = ShardedIndex::Create(&idx_, ShardMap(), options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  ASSERT_TRUE(reopened->ReloadShard(0).ok());
  ASSERT_TRUE(reopened->OpenMutationLogs().ok());
  ReplicaSet* rs = reopened->replica_set(0);

  // The trailing replica must not serve the acked stream it missed.
  EXPECT_TRUE(rs->replica_quarantined(1));
  EXPECT_EQ(rs->replica_status(1).code(), StatusCode::kUnavailable);
  ShardRouter router(&*reopened);
  ExpectIdentical(router.QueryBatch(queries_), expect);

  // Repair converges it; then it serves the full history alone.
  ASSERT_TRUE(reopened->RepairOnce().ok());
  EXPECT_EQ(rs->serving_replicas(), 2u);
  rs->QuarantineReplica(0);
  ExpectIdentical(router.QueryBatch(queries_), expect);
}

TEST_F(ReplicaTest, BackgroundRepairLoopConvergesWithBackoff) {
  const std::string dir = NewReplicaDir("repair-loop");
  ShardedIndex sharded = OpenServing(dir, ShardMap(), 2);
  ReplicaSet* rs = sharded.replica_set(0);
  rs->QuarantineReplica(1);
  ApplyBurst(&sharded, 11);

  sharded.StartRepair(0.002);
  for (int i = 0; i < 4000 && rs->serving_replicas() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sharded.StopRepair();
  EXPECT_EQ(rs->serving_replicas(), 2u);
  EXPECT_GE(rs->repairs(), 1u);
  EXPECT_EQ(rs->replica_durable_seq(1), rs->last_acked_seq());
}

// ---------------------------------------------------------------------------
// Background revive probes and jittered maintenance

TEST_F(ReplicaTest, ReviveProbeAutoRevivesQuarantinedShard) {
  const std::string dir = NewReplicaDir("revive-probe");
  ShardedIndex sharded = OpenServing(dir, ShardMap::Hash(2), 1);
  sharded.QuarantineShard(1);
  EXPECT_EQ(sharded.serving_shards(), 1u);

  sharded.StartReviveProbes(0.002);
  for (int i = 0; i < 4000 && sharded.serving_shards() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sharded.StopReviveProbes();
  EXPECT_EQ(sharded.serving_shards(), 2u);
  EXPECT_GE(sharded.revive_probe_attempts(), 1u);
  EXPECT_GE(sharded.auto_revives(), 1u);
}

TEST_F(ReplicaTest, JitteredMaintenanceDrainsAndScrubsEveryReplica) {
  const std::string dir = NewReplicaDir("maintenance");
  ShardedIndex sharded = OpenServing(dir, ShardMap::Hash(2), 2);
  ApplyBurst(&sharded, 12);
  EXPECT_GT(sharded.pending_mutations(), 0u);

  sharded.StartScrubAll(0.002);
  sharded.StartAutoFlushAll(0.002);
  bool drained = false, scrubbed = false;
  for (int i = 0; i < 4000 && !(drained && scrubbed); ++i) {
    drained = sharded.pending_mutations() == 0;
    scrubbed = true;
    for (uint32_t s = 0; s < 2 && scrubbed; ++s) {
      ReplicaSet* rs = sharded.replica_set(s);
      for (uint32_t r = 0; r < rs->num_replicas(); ++r) {
        scrubbed = scrubbed && rs->manager(r)->scrub_cycles() > 0;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sharded.StopScrubAll();
  sharded.StopAutoFlushAll();
  EXPECT_TRUE(drained);
  EXPECT_TRUE(scrubbed);

  // The flushes kept the replicas converged.
  for (uint32_t s = 0; s < 2; ++s) {
    ReplicaSet* rs = sharded.replica_set(s);
    EXPECT_EQ(rs->replica_durable_seq(0), rs->replica_durable_seq(1)) << s;
  }
}

// ---------------------------------------------------------------------------
// Failover under concurrent kill/repair churn (TSan habitat)

TEST_F(ReplicaTest, TrafficStaysExactUnderReplicaChurn) {
  const std::string dir = NewReplicaDir("churn");
  ShardedIndex sharded = OpenServing(dir, ShardMap::Hash(2), 2);
  ApplyBurst(&sharded, 13);
  ShardRouter router(&sharded);
  auto expect = router.QueryBatch(queries_);

  std::atomic<bool> stop{false};
  std::atomic<size_t> batches_done{0};
  std::atomic<size_t> anomalies{0};
  constexpr int kReaders = 2;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto routed = router.QueryBatch(queries_);
        for (size_t q = 0; q < routed.size(); ++q) {
          if (!routed[q].ok() || routed[q].count != expect[q].count ||
              routed[q].docs != expect[q].docs) {
            anomalies.fetch_add(1, std::memory_order_relaxed);
          }
        }
        batches_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Kill, repair, and revive replicas round-robin while traffic flows.
  for (int i = 0; i < 24; ++i) {
    ReplicaSet* rs = sharded.replica_set(static_cast<uint32_t>(i) % 2);
    const uint32_t victim = static_cast<uint32_t>(i / 2) % 2;
    rs->QuarantineReplica(victim);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    Status st = rs->RepairOnce();
    ASSERT_TRUE(st.ok()) << st.message();
  }
  while (batches_done.load(std::memory_order_relaxed) < kReaders * 3u) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();

  EXPECT_EQ(anomalies.load(), 0u);
  EXPECT_GT(batches_done.load(), 0u);
}

}  // namespace
}  // namespace fesia
