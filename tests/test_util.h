// Shared helpers for the FESIA test suite.
#ifndef FESIA_TESTS_TEST_UTIL_H_
#define FESIA_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "util/aligned_buffer.h"
#include "util/cpu.h"
#include "util/rng.h"

namespace fesia::testing {

/// SIMD levels this host can execute (always includes kScalar).
inline std::vector<SimdLevel> AvailableLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  SimdLevel max = DetectSimdLevel();
  if (static_cast<int>(max) >= static_cast<int>(SimdLevel::kSse)) {
    levels.push_back(SimdLevel::kSse);
  }
  if (static_cast<int>(max) >= static_cast<int>(SimdLevel::kAvx2)) {
    levels.push_back(SimdLevel::kAvx2);
  }
  if (static_cast<int>(max) >= static_cast<int>(SimdLevel::kAvx512)) {
    levels.push_back(SimdLevel::kAvx512);
  }
  return levels;
}

/// Sorted run of `n` distinct values below `bound`, excluding the sentinel.
inline std::vector<uint32_t> RandomSortedRun(uint32_t n, uint32_t bound,
                                             Rng& rng) {
  std::vector<uint32_t> v;
  while (v.size() < n) {
    v.push_back(static_cast<uint32_t>(rng.Below(bound)));
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  return v;
}

/// Copies a run into a sentinel-padded aligned buffer of `slots` elements
/// (slots >= run length), mimicking a FesiaSet segment run in situ.
inline AlignedBuffer<uint32_t> ToPaddedBuffer(const std::vector<uint32_t>& run,
                                              uint32_t slots) {
  AlignedBuffer<uint32_t> buf(slots, /*pad_elements=*/32);
  for (size_t i = 0; i < buf.padded_size(); ++i) buf[i] = 0xFFFFFFFFu;
  std::copy(run.begin(), run.end(), buf.data());
  return buf;
}

/// Exact intersection size of two sorted runs (duplicates not allowed).
inline uint32_t RefCount(const std::vector<uint32_t>& a,
                         const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return static_cast<uint32_t>(out.size());
}

}  // namespace fesia::testing

#endif  // FESIA_TESTS_TEST_UTIL_H_
