// IndexManager lifecycle: build/save/reload round trips, rollback on
// failed reloads (the incumbent keeps serving), scrub-driven quarantine
// walk-back, and hot-swap correctness under concurrent query traffic (the
// TSan habitat for the RCU engine pointer).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "index/inverted_index.h"
#include "index/query_engine.h"
#include "store/index_manager.h"
#include "store/snapshot_store.h"
#include "util/fault_injection.h"
#include "util/file_io.h"
#include "util/status.h"

namespace fesia {
namespace {

namespace fs = std::filesystem;

using ::fesia::index::InvertedIndex;
using ::fesia::index::QueryResult;
using ::fesia::store::IndexManager;
using ::fesia::store::SnapshotStore;
using ::fesia::store::SnapshotStoreOptions;

class IndexManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    index::CorpusParams corpus;
    corpus.num_docs = 3000;
    corpus.num_terms = 80;
    corpus.avg_terms_per_doc = 30.0;
    corpus.seed = 11;
    idx_ = InvertedIndex::BuildSynthetic(corpus);

    dir_ = ::testing::TempDir() + "fesia_index_manager_test." +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    SnapshotStoreOptions opts;
    opts.dir = dir_;
    auto store = SnapshotStore::Open(opts);
    ASSERT_TRUE(store.ok()) << store.status().message();
    store_ = std::make_unique<SnapshotStore>(*std::move(store));

    // A handful of 2- and 3-term conjunctive queries over mid-frequency
    // terms, so every query has nonempty inputs.
    auto terms = idx_.TermsWithPostingLength(20, 100000);
    ASSERT_GE(terms.size(), 6u);
    for (size_t i = 0; i + 2 < terms.size() && queries_.size() < 12; i += 3) {
      queries_.push_back({terms[i], terms[i + 1]});
      queries_.push_back({terms[i], terms[i + 1], terms[i + 2]});
    }
  }

  // Expected per-query counts from a reference engine built serially.
  std::vector<size_t> ExpectedCounts(const index::QueryEngine& engine) const {
    std::vector<size_t> expected;
    for (const auto& q : queries_) expected.push_back(engine.CountFesia(q));
    return expected;
  }

  InvertedIndex idx_;
  std::string dir_;
  std::unique_ptr<SnapshotStore> store_;
  std::vector<std::vector<uint32_t>> queries_;
};

TEST_F(IndexManagerTest, RebuildSaveReloadRoundTrip) {
  IndexManager mgr(&idx_, store_.get());
  EXPECT_EQ(mgr.engine(), nullptr);
  EXPECT_EQ(mgr.SaveSnapshot().code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(mgr.Rebuild().ok());
  auto built = mgr.engine();
  ASSERT_NE(built, nullptr);
  EXPECT_EQ(mgr.serving_generation(), 0u);
  const std::vector<size_t> expected = ExpectedCounts(*built);

  uint64_t gen = 0;
  ASSERT_TRUE(mgr.SaveSnapshot(&gen).ok());
  EXPECT_EQ(gen, 1u);
  EXPECT_EQ(mgr.serving_generation(), 1u);

  // A second manager over the same store reloads the persisted engine and
  // answers identically.
  SnapshotStoreOptions opts;
  opts.dir = dir_;
  auto store2 = SnapshotStore::Open(opts);
  ASSERT_TRUE(store2.ok());
  IndexManager mgr2(&idx_, &*store2);
  Status s = mgr2.Reload();
  ASSERT_TRUE(s.ok()) << s.message();
  auto loaded = mgr2.engine();
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(mgr2.serving_generation(), 1u);
  for (size_t i = 0; i < queries_.size(); ++i) {
    EXPECT_EQ(loaded->CountFesia(queries_[i]), expected[i]) << i;
  }
}

TEST_F(IndexManagerTest, FailedReloadKeepsIncumbentServing) {
  IndexManager mgr(&idx_, store_.get());
  ASSERT_TRUE(mgr.Rebuild().ok());
  ASSERT_TRUE(mgr.SaveSnapshot().ok());
  ASSERT_TRUE(mgr.Reload().ok());
  auto incumbent = mgr.engine();
  ASSERT_NE(incumbent, nullptr);
  const uint64_t swaps_before = mgr.swaps();

  // The reload's disk read comes back corrupted; the candidate must be
  // rejected and the incumbent pointer left untouched.
  {
    fault::ScopedFault f(fault::FaultPoint::kSnapshotBitFlip, 0, 1000);
    Status s = mgr.Reload();
    EXPECT_FALSE(s.ok());
  }
  EXPECT_EQ(mgr.engine(), incumbent);
  EXPECT_EQ(mgr.rollbacks(), 1u);
  EXPECT_EQ(mgr.swaps(), swaps_before);

  // The store itself is intact: the next reload succeeds and swaps.
  ASSERT_TRUE(mgr.Reload().ok());
  EXPECT_EQ(mgr.swaps(), swaps_before + 1);
}

TEST_F(IndexManagerTest, ScrubQuarantinesRottenGenerationAndWalksBack) {
  IndexManager mgr(&idx_, store_.get());
  ASSERT_TRUE(mgr.Rebuild().ok());
  const std::vector<size_t> expected = ExpectedCounts(*mgr.engine());
  ASSERT_TRUE(mgr.SaveSnapshot().ok());  // gen 1
  uint64_t gen = 0;
  ASSERT_TRUE(mgr.SaveSnapshot(&gen).ok());  // gen 2, identical payload
  ASSERT_EQ(gen, 2u);
  ASSERT_TRUE(mgr.Reload().ok());
  ASSERT_EQ(mgr.serving_generation(), 2u);

  // Clean scrub: nothing changes.
  ASSERT_TRUE(mgr.ScrubOnce().ok());
  EXPECT_EQ(mgr.serving_generation(), 2u);
  EXPECT_EQ(mgr.rollbacks(), 0u);
  EXPECT_EQ(mgr.scrub_cycles(), 1u);

  // Rot the active generation on disk. The scrub must quarantine it and
  // fall back to generation 1 without interrupting service.
  {
    std::vector<uint8_t> bytes;
    ASSERT_TRUE(ReadFileBytes(dir_ + "/snap.000002", &bytes).ok());
    bytes[bytes.size() / 2] ^= 0xFF;
    ASSERT_TRUE(WriteFileBytes(dir_ + "/snap.000002", bytes.data(),
                               bytes.size()).ok());
  }
  Status s = mgr.ScrubOnce();
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(mgr.serving_generation(), 1u);
  EXPECT_GE(mgr.rollbacks(), 1u);
  EXPECT_TRUE(fs::exists(dir_ + "/snap.000002.quarantine"));
  auto engine = mgr.engine();
  ASSERT_NE(engine, nullptr);
  for (size_t i = 0; i < queries_.size(); ++i) {
    EXPECT_EQ(engine->CountFesia(queries_[i]), expected[i]) << i;
  }
}

TEST_F(IndexManagerTest, ScrubKeepsServingWhenWholeStoreRots) {
  IndexManager mgr(&idx_, store_.get());
  ASSERT_TRUE(mgr.Rebuild().ok());
  ASSERT_TRUE(mgr.SaveSnapshot().ok());
  ASSERT_TRUE(mgr.Reload().ok());
  auto incumbent = mgr.engine();
  ASSERT_NE(incumbent, nullptr);

  // Only generation rots -> nothing on disk is usable. The scrub reports
  // data loss but the in-memory engine must keep serving (stale but valid
  // beats down).
  {
    std::vector<uint8_t> bytes;
    ASSERT_TRUE(ReadFileBytes(dir_ + "/snap.000001", &bytes).ok());
    bytes[bytes.size() / 2] ^= 0xFF;
    ASSERT_TRUE(WriteFileBytes(dir_ + "/snap.000001", bytes.data(),
                               bytes.size()).ok());
  }
  Status s = mgr.ScrubOnce();
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(mgr.engine(), incumbent);
  EXPECT_GT(incumbent->CountFesia(queries_[0]) +
                incumbent->CountFesia(queries_[1]),
            0u);
}

TEST_F(IndexManagerTest, BackgroundScrubRuns) {
  IndexManager mgr(&idx_, store_.get());
  ASSERT_TRUE(mgr.Rebuild().ok());
  ASSERT_TRUE(mgr.SaveSnapshot().ok());

  mgr.StartScrub(0.002);
  // Poll with a generous ceiling so the test cannot flake under load.
  for (int i = 0; i < 2000 && mgr.scrub_cycles() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  mgr.StopScrub();
  EXPECT_GT(mgr.scrub_cycles(), 0u);
  // StartScrub/StopScrub are idempotent.
  mgr.StopScrub();
  mgr.StartScrub(0.002);
  mgr.StopScrub();
}

// The hot-swap contract under traffic: reader threads continuously run
// query batches on whatever engine() returns while the main thread reloads
// repeatedly (including one forced rollback). Every batch must return
// exact counts — an in-flight batch keeps its engine alive across swaps —
// and the test must be clean under TSan (scripts/check.sh runs it there).
TEST_F(IndexManagerTest, HotSwapUnderConcurrentQueryTraffic) {
  IndexManager mgr(&idx_, store_.get());
  ASSERT_TRUE(mgr.Rebuild().ok());
  const std::vector<size_t> expected = ExpectedCounts(*mgr.engine());
  ASSERT_TRUE(mgr.SaveSnapshot().ok());
  ASSERT_TRUE(mgr.Reload().ok());

  std::atomic<bool> stop{false};
  std::atomic<size_t> batches_ok{0};
  std::atomic<size_t> mismatches{0};
  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      index::BatchOptions options;
      options.num_threads = 1;  // keep the contention on the swap, not
                                // the pool
      while (!stop.load(std::memory_order_relaxed)) {
        auto engine = mgr.engine();
        ASSERT_NE(engine, nullptr);
        std::vector<QueryResult> results =
            engine->QueryBatch(queries_, options);
        for (size_t i = 0; i < results.size(); ++i) {
          if (!results[i].ok() || results[i].count != expected[i] ||
              results[i].docs.size() != expected[i]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
        batches_ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Swap storm: repeated reloads, with one mid-stream forced rollback
  // (injected read corruption) that must leave traffic undisturbed.
  constexpr int kReloads = 25;
  for (int i = 0; i < kReloads; ++i) {
    if (i == kReloads / 2) {
      fault::ScopedFault f(fault::FaultPoint::kSnapshotBitFlip, 0, 900);
      EXPECT_FALSE(mgr.Reload().ok());
      continue;
    }
    Status s = mgr.Reload();
    ASSERT_TRUE(s.ok()) << s.message();
  }
  // Let the readers observe the final engine before stopping.
  while (batches_ok.load(std::memory_order_relaxed) < kReaders * 3u) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GE(mgr.swaps(), static_cast<uint64_t>(kReloads));  // + Rebuild
  EXPECT_EQ(mgr.rollbacks(), 1u);
  EXPECT_GT(batches_ok.load(), 0u);
}

}  // namespace
}  // namespace fesia
