// Resource governance end to end: bounded-memory WAL replay (chunked,
// frame-aligned, budget-charged), overlay/WAL byte accounting, mutation
// backpressure (early size-based flushes, hard-cap soft-failures that never
// lose an acknowledged write), pressure-aware query degradation, per-shard
// sub-budgets, and alloc/budget fault storms over Open/Flush/Reload.
// docs/ROBUSTNESS.md, "Resource governance and backpressure".
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "index/inverted_index.h"
#include "index/query_engine.h"
#include "shard/shard_map.h"
#include "shard/shard_router.h"
#include "shard/sharded_index.h"
#include "store/delta_index.h"
#include "store/index_manager.h"
#include "store/snapshot_store.h"
#include "store/wal.h"
#include "util/fault_injection.h"
#include "util/memory_budget.h"
#include "util/status.h"

namespace fesia {
namespace {

namespace fs = std::filesystem;

using ::fesia::index::InvertedIndex;
using ::fesia::index::QueryResult;
using ::fesia::store::DeltaIndex;
using ::fesia::store::IndexManager;
using ::fesia::store::SnapshotStore;
using ::fesia::store::SnapshotStoreOptions;
using ::fesia::store::WalOpenOptions;
using ::fesia::store::WalRecord;
using ::fesia::store::WalReplayReport;
using ::fesia::store::WriteAheadLog;

using Model = std::map<uint32_t, std::vector<uint32_t>>;

Model ModelFromIndex(const InvertedIndex& idx) {
  Model model;
  for (uint32_t t = 0; t < idx.num_terms(); ++t) {
    for (uint32_t d : idx.Postings(t)) model[d].push_back(t);
  }
  return model;
}

std::vector<std::vector<uint32_t>> PostingsFromModel(const Model& model,
                                                     uint32_t num_terms) {
  std::vector<std::vector<uint32_t>> postings(num_terms);
  for (const auto& [doc, terms] : model) {
    for (uint32_t t : terms) postings[t].push_back(doc);
  }
  return postings;
}

WalRecord UpsertRecord(uint64_t seq, uint32_t doc,
                       std::vector<uint32_t> terms) {
  WalRecord r;
  r.seq = seq;
  r.kind = WalRecord::Kind::kUpsert;
  r.doc = doc;
  r.terms = std::move(terms);
  return r;
}

WalRecord DeleteRecord(uint64_t seq, uint32_t doc) {
  WalRecord r;
  r.seq = seq;
  r.kind = WalRecord::Kind::kDelete;
  r.doc = doc;
  return r;
}

class ResourceGovernanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    index::CorpusParams corpus;
    corpus.num_docs = 2000;
    corpus.num_terms = 60;
    corpus.avg_terms_per_doc = 25.0;
    corpus.seed = 17;
    idx_ = InvertedIndex::BuildSynthetic(corpus);
    model_ = ModelFromIndex(idx_);

    dir_ = ::testing::TempDir() + "fesia_resource_test." +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);

    auto terms = idx_.TermsWithPostingLength(20, 100000);
    ASSERT_GE(terms.size(), 6u);
    for (size_t i = 0; i + 2 < terms.size() && queries_.size() < 10; i += 3) {
      queries_.push_back({terms[i], terms[i + 1]});
      queries_.push_back({terms[i], terms[i + 1], terms[i + 2]});
    }
  }

  void TearDown() override { fault::DisarmAll(); }

  std::unique_ptr<SnapshotStore> OpenStore(const std::string& dir) {
    SnapshotStoreOptions opts;
    opts.dir = dir;
    auto store = SnapshotStore::Open(opts);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    if (!store.ok()) return nullptr;
    return std::make_unique<SnapshotStore>(*std::move(store));
  }

  void ExpectMatchesModel(const IndexManager& mgr, const Model& model,
                          const std::string& context) {
    InvertedIndex ref_idx = InvertedIndex::FromPostings(
        idx_.num_docs(), PostingsFromModel(model, idx_.num_terms()));
    index::QueryEngine ref(&ref_idx, FesiaParams{});
    index::BatchOptions opts;
    opts.num_threads = 1;
    std::vector<QueryResult> expected = ref.CountBatch(queries_, opts);
    std::vector<QueryResult> actual = mgr.CountBatch(queries_, opts);
    ASSERT_EQ(actual.size(), expected.size()) << context;
    for (size_t q = 0; q < expected.size(); ++q) {
      ASSERT_TRUE(expected[q].ok()) << context << " query " << q;
      ASSERT_TRUE(actual[q].ok()) << context << " query " << q;
      EXPECT_EQ(actual[q].count, expected[q].count)
          << context << " query " << q;
    }
  }

  std::vector<uint32_t> RandomTerms(std::mt19937_64* rng) {
    std::vector<uint32_t> terms;
    const size_t n = (*rng)() % 11;
    for (size_t i = 0; i < n; ++i) {
      terms.push_back(static_cast<uint32_t>((*rng)() % idx_.num_terms()));
    }
    std::sort(terms.begin(), terms.end());
    terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
    return terms;
  }

  // Fills `dir` with one WAL segment of `records` acknowledged upserts,
  // each carrying `terms_per_record` terms. Returns the highest seq.
  uint64_t WriteWalSegment(const std::string& dir, size_t records,
                           size_t terms_per_record) {
    auto wal = WriteAheadLog::Open(dir);
    EXPECT_TRUE(wal.ok()) << wal.status().ToString();
    if (!wal.ok()) return 0;
    for (size_t i = 0; i < records; ++i) {
      std::vector<uint32_t> terms;
      terms.reserve(terms_per_record);
      for (size_t t = 0; t < terms_per_record; ++t) {
        terms.push_back(static_cast<uint32_t>(t));
      }
      EXPECT_TRUE(
          wal->Append(UpsertRecord(i + 1, static_cast<uint32_t>(i % 1000),
                                   std::move(terms)))
              .ok());
    }
    return records;
  }

  InvertedIndex idx_;
  Model model_;
  std::string dir_;
  std::vector<std::vector<uint32_t>> queries_;
};

// --- Chunked WAL replay (bugfix: whole-segment reads) ---------------------

TEST_F(ResourceGovernanceTest, ChunkedReplayCrossesChunkBoundaries) {
  // ~200 records x ~185-byte frames = ~37 KiB, replayed through a 4 KiB
  // window: every frame-boundary-straddles-chunk-boundary case is hit.
  const uint64_t last = WriteWalSegment(dir_, 200, 40);

  std::vector<WalRecord> records;
  WalReplayReport report;
  WalOpenOptions opts;
  opts.replay_chunk_bytes = 4096;
  auto wal = WriteAheadLog::Open(dir_, &records, &report, opts);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_EQ(records.size(), 200u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, i + 1);
    EXPECT_EQ(records[i].terms.size(), 40u);
  }
  EXPECT_EQ(wal->last_seq(), last);
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_GT(report.replayed_bytes, 4 * 4096u);  // genuinely multi-chunk
  // The replayed segment stays live (sealed) until DropThrough retires it.
  EXPECT_EQ(wal->open_bytes(), report.replayed_bytes);
}

TEST_F(ResourceGovernanceTest, ReplayOfSegmentLargerThanBudgetSucceeds) {
  // Regression for the whole-segment read: the old path loaded each
  // segment into one buffer, so replaying a segment charged its full size
  // against the budget. Chunked replay must hold only the window.
  WriteWalSegment(dir_, 600, 100);  // ~255 KiB segment

  MemoryBudget budget(64 << 10, nullptr, "replay");  // << segment size
  std::vector<WalRecord> records;
  WalReplayReport report;
  WalOpenOptions opts;
  opts.replay_chunk_bytes = 16 << 10;
  opts.budget = &budget;
  auto wal = WriteAheadLog::Open(dir_, &records, &report, opts);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(records.size(), 600u);
  EXPECT_TRUE(report.clean());
  EXPECT_GT(report.replayed_bytes, budget.limit_bytes());
  // The replay window was returned in full.
  EXPECT_EQ(budget.used(), 0u);
}

TEST_F(ResourceGovernanceTest, ReplayBudgetExhaustionFailsCleanly) {
  WriteWalSegment(dir_, 40, 100);  // ~17 KiB segment

  MemoryBudget budget(1024, nullptr, "tiny");  // below even one window
  WalOpenOptions opts;
  opts.budget = &budget;
  auto wal = WriteAheadLog::Open(dir_, nullptr, nullptr, opts);
  ASSERT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.used(), 0u);  // rolled back, not leaked

  // The refusal must not have damaged the log: an adequate budget replays
  // every record.
  std::vector<WalRecord> records;
  auto retry = WriteAheadLog::Open(dir_, &records);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(records.size(), 40u);
}

TEST_F(ResourceGovernanceTest, ChunkedReplayStillRepairsTornTail) {
  WriteWalSegment(dir_, 120, 40);  // ~22 KiB

  // Tear the segment mid-frame, a few chunks in.
  std::string seg;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal.", 0) == 0) seg = entry.path().string();
  }
  ASSERT_FALSE(seg.empty());
  const uintmax_t full = fs::file_size(seg);
  fs::resize_file(seg, full - 70);  // cuts into the final frames

  std::vector<WalRecord> records;
  WalReplayReport report;
  WalOpenOptions opts;
  opts.replay_chunk_bytes = 4096;
  auto wal = WriteAheadLog::Open(dir_, &records, &report, opts);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  // Everything before the tear survives, in order, nothing fabricated.
  ASSERT_FALSE(records.empty());
  ASSERT_LT(records.size(), 120u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, i + 1);
  }
  EXPECT_GT(report.torn_tail_bytes, 0u);
  EXPECT_EQ(report.quarantined_segments, 1u);

  // Second open is clean: the repair truncated the tail for good.
  std::vector<WalRecord> again;
  WalReplayReport second;
  auto reopened = WriteAheadLog::Open(dir_, &again, &second, opts);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(again.size(), records.size());
  EXPECT_TRUE(second.clean()) << second.ToString();
}

// --- Overlay and manager byte accounting ----------------------------------

TEST_F(ResourceGovernanceTest, DeltaOverlayPendingBytesTracksContent) {
  DeltaIndex delta;
  EXPECT_EQ(delta.pending_bytes(), 0u);
  delta.Apply(UpsertRecord(1, 7, {1, 2, 3}));
  const uint64_t three_terms = delta.pending_bytes();
  EXPECT_GT(three_terms, 3 * sizeof(uint32_t));

  // Overwriting a doc replaces its contribution, not accumulates it.
  delta.Apply(UpsertRecord(2, 7, {1, 2, 3, 4, 5}));
  const uint64_t five_terms = delta.pending_bytes();
  EXPECT_EQ(five_terms, three_terms + 2 * sizeof(uint32_t));

  // A tombstone still occupies its entry overhead.
  delta.Apply(DeleteRecord(3, 9));
  EXPECT_GT(delta.pending_bytes(), five_terms);

  // Pruning merged entries returns their bytes.
  delta.PruneThrough(2);
  EXPECT_LT(delta.pending_bytes(), five_terms);
  delta.PruneThrough(3);
  EXPECT_EQ(delta.pending_bytes(), 0u);
}

TEST_F(ResourceGovernanceTest, MutationStatsReportDocsAndBytes) {
  auto store = OpenStore(dir_);
  ASSERT_NE(store, nullptr);
  IndexManager mgr(&idx_, store.get(), {});
  ASSERT_TRUE(mgr.Rebuild().ok());
  ASSERT_TRUE(mgr.OpenMutationLog().ok());

  ASSERT_TRUE(mgr.Upsert(1, {0, 1, 2}).ok());
  ASSERT_TRUE(mgr.Delete(2).ok());

  IndexManager::MutationStats ms = mgr.mutation_stats();
  EXPECT_EQ(ms.pending_docs, 2u);
  EXPECT_GT(ms.pending_bytes, 0u);
  EXPECT_GT(ms.wal_open_bytes, 0u);
  EXPECT_EQ(ms.accepted, 2u);
  EXPECT_EQ(ms.rejected, 0u);
  EXPECT_EQ(mgr.pending_bytes(), ms.pending_bytes);

  ASSERT_TRUE(mgr.FlushDelta().ok());
  ms = mgr.mutation_stats();
  EXPECT_EQ(ms.pending_docs, 0u);
  EXPECT_EQ(ms.pending_bytes, 0u);
  EXPECT_EQ(ms.wal_open_bytes, 0u);  // segments truncated post-commit
}

// --- Mutation backpressure ------------------------------------------------

TEST_F(ResourceGovernanceTest, SoftBoundTriggersEarlySizeBasedFlush) {
  auto store = OpenStore(dir_);
  ASSERT_NE(store, nullptr);
  IndexManager::Options opts;
  opts.mutation_soft_bytes = 1;  // any pending byte crosses the bound
  IndexManager mgr(&idx_, store.get(), opts);
  ASSERT_TRUE(mgr.Rebuild().ok());
  ASSERT_TRUE(mgr.OpenMutationLog().ok());
  // An interval so long that only a size-based request can flush.
  mgr.StartAutoFlush(3600.0);

  std::vector<uint64_t> seqs;
  for (int round = 0; round < 3; ++round) {
    uint64_t seq = 0;
    ASSERT_TRUE(
        mgr.Upsert(static_cast<uint32_t>(round), {1, 2, 3}, &seq).ok());
    seqs.push_back(seq);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (mgr.pending_mutations() > 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(mgr.pending_mutations(), 0u) << "size-based flush never ran";
  }
  mgr.StopAutoFlush();

  EXPECT_GE(mgr.mutation_stats().size_triggered_flushes, 3u);
  // Seq stays monotonic across size-based flushes.
  for (size_t i = 1; i < seqs.size(); ++i) EXPECT_GT(seqs[i], seqs[i - 1]);
  ExpectMatchesModel(mgr, [&] {
    Model m = model_;
    for (int round = 0; round < 3; ++round) m[round] = {1, 2, 3};
    return m;
  }(), "after size-based flushes");
}

TEST_F(ResourceGovernanceTest, HardCapSoftFailsDuringFlushWithoutLosingAcks) {
  auto store = OpenStore(dir_);
  ASSERT_NE(store, nullptr);
  IndexManager::Options opts;
  opts.mutation_hard_bytes = 1;  // every byte crosses the hard cap
  IndexManager mgr(&idx_, store.get(), opts);
  ASSERT_TRUE(mgr.Rebuild().ok());
  ASSERT_TRUE(mgr.OpenMutationLog().ok());

  // A continuous flusher keeps a merge in flight; mutations landing inside
  // a merge window must be rejected with kResourceExhausted *before* the
  // WAL append, and everything acknowledged must survive.
  std::atomic<bool> stop{false};
  std::thread flusher([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      mgr.FlushDelta();  // kFailedPrecondition/no-op races are fine
    }
  });

  Model model = model_;
  std::mt19937_64 rng(29);
  uint64_t accepted = 0, rejected = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while ((rejected == 0 || accepted == 0) &&
         std::chrono::steady_clock::now() < deadline) {
    const uint32_t doc = static_cast<uint32_t>(rng() % idx_.num_docs());
    std::vector<uint32_t> terms = RandomTerms(&rng);
    Status s = mgr.Upsert(doc, terms);
    if (s.ok()) {
      model[doc] = std::move(terms);
      ++accepted;
    } else {
      // The only sanctioned refusal is the backpressure soft-failure.
      ASSERT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
      ++rejected;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  flusher.join();
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(rejected, 0u) << "no mutation ever landed inside a merge window";

  IndexManager::MutationStats ms = mgr.mutation_stats();
  EXPECT_EQ(ms.accepted, accepted);
  EXPECT_EQ(ms.rejected, rejected);

  // Drain the overlay and check the oracle: acked == served, exactly.
  while (!mgr.FlushDelta().ok()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ExpectMatchesModel(mgr, model, "after backpressure storm");
}

// --- Pressure-aware query degradation -------------------------------------

TEST_F(ResourceGovernanceTest, PressureShedsLowPriorityAndDegradesRest) {
  index::QueryEngine engine(&idx_, FesiaParams{});
  std::vector<size_t> serial;
  serial.reserve(queries_.size());
  for (const auto& q : queries_) serial.push_back(engine.CountFesia(q));

  // Roomy enough that the batch's fixed scratch charge is always
  // admitted — this test isolates the watermark path, not the refusal
  // path (ScratchRefusalDegradesInsteadOfFailing covers that).
  MemoryBudget budget(1 << 20, nullptr, "query");
  ScopedCharge pressure(&budget);
  // Default high watermark is limit - limit/8.
  ASSERT_TRUE(pressure.Add((1 << 20) - (1 << 17) + 1).ok());
  ASSERT_TRUE(budget.under_pressure());

  index::BatchOptions opts;
  opts.num_threads = 1;
  opts.intra_query_threads = 4;  // requests the parallel tier
  opts.budget = &budget;

  // Low priority: shed outright, before touching the index.
  opts.priority = index::QueryPriority::kLow;
  index::BatchStats stats;
  std::vector<QueryResult> low = engine.CountBatch(queries_, opts, &stats);
  for (const QueryResult& r : low) {
    EXPECT_EQ(r.outcome, index::QueryOutcome::kShed);
    EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
    EXPECT_TRUE(r.pressure_affected);
    EXPECT_EQ(r.attempts, 0);
  }
  EXPECT_EQ(stats.pressure_shed, queries_.size());
  EXPECT_EQ(stats.shed, queries_.size());

  // Normal priority: answered, but forced off the parallel tier, and still
  // byte-identical to the serial oracle.
  opts.priority = index::QueryPriority::kNormal;
  std::vector<QueryResult> normal = engine.CountBatch(queries_, opts, &stats);
  for (size_t i = 0; i < normal.size(); ++i) {
    ASSERT_TRUE(normal[i].ok());
    EXPECT_EQ(normal[i].count, serial[i]);
    EXPECT_TRUE(normal[i].downgraded);
    EXPECT_TRUE(normal[i].pressure_affected);
  }
  EXPECT_EQ(stats.pressure_downgrades, queries_.size());
  EXPECT_EQ(stats.pressure_shed, 0u);

  // High priority is degraded the same way, never shed.
  opts.priority = index::QueryPriority::kHigh;
  std::vector<QueryResult> high = engine.CountBatch(queries_, opts, &stats);
  for (size_t i = 0; i < high.size(); ++i) {
    ASSERT_TRUE(high[i].ok());
    EXPECT_EQ(high[i].count, serial[i]);
  }
  EXPECT_EQ(stats.shed, 0u);

  // Pressure clears below the low watermark: low priority serves again,
  // and nothing is marked pressure-affected.
  pressure.Release();
  ASSERT_FALSE(budget.under_pressure());
  opts.priority = index::QueryPriority::kLow;
  std::vector<QueryResult> after = engine.CountBatch(queries_, opts, &stats);
  for (size_t i = 0; i < after.size(); ++i) {
    ASSERT_TRUE(after[i].ok());
    EXPECT_EQ(after[i].count, serial[i]);
    EXPECT_FALSE(after[i].pressure_affected);
  }
  EXPECT_EQ(stats.pressure_shed, 0u);
  EXPECT_EQ(stats.pressure_downgrades, 0u);
}

TEST_F(ResourceGovernanceTest, ScratchRefusalDegradesInsteadOfFailing) {
  index::QueryEngine engine(&idx_, FesiaParams{});
  std::vector<size_t> serial;
  for (const auto& q : queries_) serial.push_back(engine.CountFesia(q));

  // Far too small for the batch's fixed scratch, but never past a
  // watermark: the refusal itself must flip the batch into degraded mode.
  MemoryBudget budget(64, nullptr, "scratch");
  index::BatchOptions opts;
  opts.num_threads = 1;
  opts.intra_query_threads = 4;
  opts.budget = &budget;

  index::BatchStats stats;
  std::vector<QueryResult> normal = engine.CountBatch(queries_, opts, &stats);
  for (size_t i = 0; i < normal.size(); ++i) {
    ASSERT_TRUE(normal[i].ok());
    EXPECT_EQ(normal[i].count, serial[i]);
    EXPECT_TRUE(normal[i].pressure_affected);
  }
  EXPECT_EQ(stats.pressure_downgrades, queries_.size());

  opts.priority = index::QueryPriority::kLow;
  std::vector<QueryResult> low = engine.CountBatch(queries_, opts, &stats);
  for (const QueryResult& r : low) {
    EXPECT_EQ(r.outcome, index::QueryOutcome::kShed);
  }
  EXPECT_EQ(stats.pressure_shed, queries_.size());
  // The refused charge left nothing behind.
  EXPECT_EQ(budget.used(), 0u);
}

TEST_F(ResourceGovernanceTest, UnpressuredBudgetIsByteIdentical) {
  index::QueryEngine engine(&idx_, FesiaParams{});
  index::BatchOptions plain;
  plain.num_threads = 1;
  std::vector<QueryResult> expected = engine.CountBatch(queries_, plain);

  MemoryBudget budget(1ull << 40, nullptr, "roomy");
  index::BatchOptions governed = plain;
  governed.budget = &budget;
  governed.priority = index::QueryPriority::kLow;
  std::vector<QueryResult> actual = engine.CountBatch(queries_, governed);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_TRUE(actual[i].ok());
    EXPECT_EQ(actual[i].count, expected[i].count);
    EXPECT_FALSE(actual[i].pressure_affected);
  }
}

// --- Sharded governance ---------------------------------------------------

TEST_F(ResourceGovernanceTest, PerShardSubBudgetsRollUpAndDrain) {
  MemoryBudget parent(64ull << 20, nullptr, "process");
  {
    shard::ShardedIndexOptions sopts;
    sopts.store_dir = dir_;
    sopts.budget = &parent;
    sopts.shard_budget_bytes = 32ull << 20;
    auto sharded = shard::ShardedIndex::Create(
        &idx_, shard::ShardMap::Hash(2), sopts);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    for (uint32_t s = 0; s < 2; ++s) {
      MemoryBudget* sub = sharded->shard_budget(s);
      ASSERT_NE(sub, nullptr);
      EXPECT_EQ(sub->parent(), &parent);
      EXPECT_EQ(sub->limit_bytes(), 32ull << 20);
    }
    ASSERT_TRUE(sharded->RebuildAll().ok());
    // Engine footprints charged through the children into the parent.
    EXPECT_GT(parent.used(), 0u);
    ASSERT_TRUE(sharded->SaveAll().ok());
    ASSERT_TRUE(sharded->OpenMutationLogs().ok());
    ASSERT_TRUE(sharded->Upsert(3, {1, 2}).ok());
    ASSERT_TRUE(sharded->Upsert(4, {5}).ok());
    EXPECT_EQ(sharded->pending_mutations(), 2u);
    EXPECT_GT(sharded->pending_bytes(), 0u);

    // Routed queries degrade against the shared parent: push it over its
    // high watermark and low-priority routed queries shed on every shard.
    shard::ShardRouter router(&*sharded);
    shard::RouterOptions ropts;
    ropts.num_threads = 1;
    ropts.priority = index::QueryPriority::kLow;
    ScopedCharge squeeze(&parent);
    ASSERT_TRUE(squeeze.Add(60ull << 20).ok());
    ASSERT_TRUE(parent.under_pressure());
    shard::ShardBatchStats stats;
    auto routed = router.CountBatch(queries_, ropts, &stats);
    for (const auto& r : routed) {
      EXPECT_EQ(r.outcome, index::QueryOutcome::kShed);
      EXPECT_EQ(r.shards_answered, 0u);
    }
    EXPECT_EQ(stats.merged.pressure_shed, 2 * queries_.size());

    squeeze.Release();
    ASSERT_FALSE(parent.under_pressure());
    routed = router.CountBatch(queries_, ropts, &stats);
    for (const auto& r : routed) EXPECT_TRUE(r.ok());
    EXPECT_EQ(stats.merged.pressure_shed, 0u);
  }
  // Teardown invariant: every charge (engines, payloads, windows) was
  // matched by a release once the index and its readers are gone.
  EXPECT_EQ(parent.used(), 0u);
}

// --- Fault storms ---------------------------------------------------------

// One governed lifecycle — reload, WAL open/replay, mutation storm, flush —
// with `point` armed to fire after `skip` passing hits. Whatever failed
// must fail cleanly; whatever was acknowledged must survive into a fresh
// manager over the same store.
class GovernanceFaultSweep : public ResourceGovernanceTest {
 protected:
  void RunSweep(fault::FaultPoint point) {
    for (uint64_t skip : {0u, 1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u}) {
      SCOPED_TRACE("skip=" + std::to_string(skip));
      const std::string dir = dir_ + "/skip-" + std::to_string(skip);
      MemoryBudget budget(MemoryBudget::kNoLimit, nullptr, "sweep");
      Model model = model_;
      {
        auto store = OpenStore(dir);
        ASSERT_NE(store, nullptr);
        IndexManager::Options opts;
        opts.budget = &budget;
        IndexManager mgr(&idx_, store.get(), opts);
        ASSERT_TRUE(mgr.Rebuild().ok());
        ASSERT_TRUE(mgr.SaveSnapshot().ok());

        fault::Arm(point, skip);
        Status reloaded = mgr.Reload();
        Status opened = mgr.OpenMutationLog();
        if (opened.ok()) {
          std::mt19937_64 rng(skip * 977 + 5);
          for (int i = 0; i < 25; ++i) {
            const uint32_t doc =
                static_cast<uint32_t>(rng() % idx_.num_docs());
            std::vector<uint32_t> terms = RandomTerms(&rng);
            Status s = mgr.Upsert(doc, terms);
            if (s.ok()) model[doc] = std::move(terms);
          }
          mgr.FlushDelta();  // may roll back; incumbent keeps serving
        }
        fault::DisarmAll();

        // The incumbent (from the pre-fault Rebuild at worst) serves.
        ASSERT_NE(mgr.engine(), nullptr);
        ExpectMatchesModel(mgr, model, "incumbent after fault");
        (void)reloaded;
      }

      // Zero acked-write loss: a fresh manager over the same store + WAL
      // reconstructs exactly the acknowledged state.
      auto store = OpenStore(dir);
      ASSERT_NE(store, nullptr);
      {
        IndexManager fresh(&idx_, store.get(), {});
        Status reloaded = fresh.Reload();
        if (!reloaded.ok()) {
          ASSERT_TRUE(fresh.Rebuild().ok());
        }
        ASSERT_TRUE(fresh.OpenMutationLog().ok());
        ExpectMatchesModel(fresh, model, "fresh manager after fault");
      }
      // Whatever the fault interrupted, its charges were rolled back or
      // released with the manager: nothing leaks into the budget.
      EXPECT_EQ(budget.used(), 0u);
    }
  }
};

TEST_F(GovernanceFaultSweep, AllocationStorm) {
  RunSweep(fault::FaultPoint::kAllocation);
}

TEST_F(GovernanceFaultSweep, BudgetExhaustedStorm) {
  RunSweep(fault::FaultPoint::kBudgetExhausted);
}

TEST_F(ResourceGovernanceTest, BudgetChargesDrainToZeroAtTeardown) {
  MemoryBudget budget(MemoryBudget::kNoLimit, nullptr, "lifecycle");
  {
    auto store = OpenStore(dir_);
    ASSERT_NE(store, nullptr);
    IndexManager::Options opts;
    opts.budget = &budget;
    IndexManager mgr(&idx_, store.get(), opts);
    ASSERT_TRUE(mgr.Rebuild().ok());
    EXPECT_GT(budget.used(), 0u);  // the serving engine's footprint
    ASSERT_TRUE(mgr.SaveSnapshot().ok());
    ASSERT_TRUE(mgr.Reload().ok());
    ASSERT_TRUE(mgr.OpenMutationLog().ok());
    ASSERT_TRUE(mgr.Upsert(1, {2, 3}).ok());
    ASSERT_TRUE(mgr.FlushDelta().ok());
    ExpectMatchesModel(mgr, [&] {
      Model m = model_;
      m[1] = {2, 3};
      return m;
    }(), "governed lifecycle");
  }
  // Engines, payload windows, and merge candidates all released.
  EXPECT_EQ(budget.used(), 0u);
}

}  // namespace
}  // namespace fesia
