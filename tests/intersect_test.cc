// End-to-end correctness of the pairwise FESIA pipeline against the merge
// reference, across ISA levels, segment widths, bitmap scales, kernel
// strides, selectivities, and size mixes.
#include "fesia/intersect.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "datagen/datagen.h"
#include "fesia/fesia_set.h"
#include "test_util.h"
#include "util/cpu.h"

namespace fesia {
namespace {

using ::fesia::datagen::PairWithSelectivity;
using ::fesia::datagen::SetPair;
using ::fesia::testing::AvailableLevels;

bool Supported(SimdLevel level) {
  return static_cast<int>(level) <= static_cast<int>(DetectSimdLevel());
}

// (level, segment_bits, kernel_stride)
using Config = std::tuple<SimdLevel, int, int>;

std::string ConfigName(const ::testing::TestParamInfo<Config>& info) {
  auto [level, s, stride] = info.param;
  return std::string(SimdLevelName(level)) + "_s" + std::to_string(s) +
         "_stride" + std::to_string(stride);
}

class IntersectConfigTest : public ::testing::TestWithParam<Config> {
 protected:
  void SetUp() override {
    if (!Supported(std::get<0>(GetParam()))) {
      GTEST_SKIP() << "host lacks " << SimdLevelName(std::get<0>(GetParam()));
    }
  }

  FesiaParams Params() const {
    auto [level, s, stride] = GetParam();
    FesiaParams p;
    p.segment_bits = s;
    p.kernel_stride = stride;
    p.simd_level = level;
    return p;
  }

  SimdLevel Level() const { return std::get<0>(GetParam()); }
};

TEST_P(IntersectConfigTest, RandomPairsMatchReference) {
  FesiaParams p = Params();
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    SetPair pair = PairWithSelectivity(2000, 2000, 0.05, seed);
    FesiaSet fa = FesiaSet::Build(pair.a, p);
    FesiaSet fb = FesiaSet::Build(pair.b, p);
    EXPECT_EQ(IntersectCount(fa, fb, Level()), pair.intersection_size);
    // Symmetry.
    EXPECT_EQ(IntersectCount(fb, fa, Level()), pair.intersection_size);
  }
}

TEST_P(IntersectConfigTest, SelectivitySweep) {
  FesiaParams p = Params();
  for (double sel : {0.0, 0.01, 0.1, 0.5, 1.0}) {
    SetPair pair = PairWithSelectivity(1500, 1500, sel, 99);
    FesiaSet fa = FesiaSet::Build(pair.a, p);
    FesiaSet fb = FesiaSet::Build(pair.b, p);
    EXPECT_EQ(IntersectCount(fa, fb, Level()), pair.intersection_size)
        << "selectivity=" << sel;
  }
}

TEST_P(IntersectConfigTest, SkewedSizesDifferentBitmaps) {
  FesiaParams p = Params();
  // 100 vs 20000 elements: the bitmaps end up with different power-of-two
  // sizes, exercising the modular segment pairing.
  SetPair pair = PairWithSelectivity(100, 20000, 0.3, 17);
  FesiaSet fa = FesiaSet::Build(pair.a, p);
  FesiaSet fb = FesiaSet::Build(pair.b, p);
  ASSERT_NE(fa.bitmap_bits(), fb.bitmap_bits());
  EXPECT_EQ(IntersectCount(fa, fb, Level()), pair.intersection_size);
  EXPECT_EQ(IntersectCount(fb, fa, Level()), pair.intersection_size);
}

TEST_P(IntersectConfigTest, IdenticalSets) {
  FesiaParams p = Params();
  std::vector<uint32_t> v = datagen::SortedUniform(3000, 1u << 24, 5);
  FesiaSet fa = FesiaSet::Build(v, p);
  FesiaSet fb = FesiaSet::Build(v, p);
  EXPECT_EQ(IntersectCount(fa, fb, Level()), v.size());
}

TEST_P(IntersectConfigTest, EmptySets) {
  FesiaParams p = Params();
  FesiaSet empty = FesiaSet::Build({}, p);
  FesiaSet nonempty =
      FesiaSet::Build(datagen::SortedUniform(100, 1000, 3), p);
  EXPECT_EQ(IntersectCount(empty, nonempty, Level()), 0u);
  EXPECT_EQ(IntersectCount(nonempty, empty, Level()), 0u);
  EXPECT_EQ(IntersectCount(empty, empty, Level()), 0u);
}

TEST_P(IntersectConfigTest, SingletonSets) {
  FesiaParams p = Params();
  FesiaSet one = FesiaSet::Build(std::vector<uint32_t>{42}, p);
  FesiaSet other = FesiaSet::Build(std::vector<uint32_t>{42, 43, 44}, p);
  FesiaSet miss = FesiaSet::Build(std::vector<uint32_t>{7}, p);
  EXPECT_EQ(IntersectCount(one, other, Level()), 1u);
  EXPECT_EQ(IntersectCount(one, miss, Level()), 0u);
  EXPECT_EQ(IntersectCount(one, one, Level()), 1u);
}

TEST_P(IntersectConfigTest, IntoMatchesReferenceElements) {
  FesiaParams p = Params();
  SetPair pair = PairWithSelectivity(800, 1200, 0.2, 23);
  FesiaSet fa = FesiaSet::Build(pair.a, p);
  FesiaSet fb = FesiaSet::Build(pair.b, p);
  std::vector<uint32_t> out;
  size_t r = IntersectInto(fa, fb, &out, /*sort_output=*/true, Level());
  std::vector<uint32_t> expected;
  std::set_intersection(pair.a.begin(), pair.a.end(), pair.b.begin(),
                        pair.b.end(), std::back_inserter(expected));
  ASSERT_EQ(r, expected.size());
  EXPECT_EQ(out, expected);
}

TEST_P(IntersectConfigTest, InstrumentedAgreesAndFillsBreakdown) {
  FesiaParams p = Params();
  SetPair pair = PairWithSelectivity(5000, 5000, 0.02, 31);
  FesiaSet fa = FesiaSet::Build(pair.a, p);
  FesiaSet fb = FesiaSet::Build(pair.b, p);
  IntersectBreakdown bd;
  size_t r = IntersectCountInstrumented(fa, fb, &bd, Level());
  EXPECT_EQ(r, pair.intersection_size);
  EXPECT_EQ(bd.result, pair.intersection_size);
  // Every true match occupies a distinct matched segment pair at most once;
  // matched segments >= segments holding true matches.
  EXPECT_GE(bd.matched_segments, 0u);
  EXPECT_GT(bd.step1_cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, IntersectConfigTest,
    ::testing::Combine(::testing::Values(SimdLevel::kScalar, SimdLevel::kSse,
                                         SimdLevel::kAvx2, SimdLevel::kAvx512),
                       ::testing::Values(8, 16, 32),
                       ::testing::Values(1, 4)),
    ConfigName);

// --- Cross-ISA agreement ---------------------------------------------------

TEST(IntersectCrossIsaTest, AllLevelsAgree) {
  SetPair pair = PairWithSelectivity(10000, 10000, 0.03, 77);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  for (SimdLevel level : testing::AvailableLevels()) {
    EXPECT_EQ(IntersectCount(fa, fb, level), pair.intersection_size)
        << SimdLevelName(level);
  }
}

TEST(IntersectCrossIsaTest, StrideVariantsAgree) {
  SetPair pair = PairWithSelectivity(4000, 4000, 0.1, 123);
  for (int stride : {1, 2, 4, 8}) {
    FesiaParams p;
    p.kernel_stride = stride;
    FesiaSet fa = FesiaSet::Build(pair.a, p);
    FesiaSet fb = FesiaSet::Build(pair.b, p);
    for (SimdLevel level : testing::AvailableLevels()) {
      EXPECT_EQ(IntersectCount(fa, fb, level), pair.intersection_size)
          << "stride=" << stride << " level=" << SimdLevelName(level);
    }
  }
}

TEST(IntersectCrossIsaTest, MixedStridePairsAgree) {
  SetPair pair = PairWithSelectivity(3000, 3000, 0.05, 321);
  FesiaParams p1;
  p1.kernel_stride = 1;
  FesiaParams p8;
  p8.kernel_stride = 8;
  FesiaSet fa = FesiaSet::Build(pair.a, p1);
  FesiaSet fb = FesiaSet::Build(pair.b, p8);
  for (SimdLevel level : testing::AvailableLevels()) {
    EXPECT_EQ(IntersectCount(fa, fb, level), pair.intersection_size)
        << SimdLevelName(level);
  }
}

// Bitmap-scale extremes: tiny bitmaps force large segments (general
// fallback); huge bitmaps make every segment size 0/1.
TEST(IntersectCrossIsaTest, BitmapScaleExtremes) {
  SetPair pair = PairWithSelectivity(2000, 2000, 0.2, 55);
  for (double scale : {0.25, 1.0, 64.0}) {
    FesiaParams p;
    p.bitmap_scale = scale;
    FesiaSet fa = FesiaSet::Build(pair.a, p);
    FesiaSet fb = FesiaSet::Build(pair.b, p);
    for (SimdLevel level : testing::AvailableLevels()) {
      EXPECT_EQ(IntersectCount(fa, fb, level), pair.intersection_size)
          << "scale=" << scale << " level=" << SimdLevelName(level);
    }
  }
}

TEST(IntersectCrossIsaTest, AdjacentValuesDense) {
  // Dense consecutive ranges stress hash clustering.
  std::vector<uint32_t> a(5000), b(5000);
  for (uint32_t i = 0; i < 5000; ++i) {
    a[i] = i;
    b[i] = i + 2500;
  }
  FesiaSet fa = FesiaSet::Build(a);
  FesiaSet fb = FesiaSet::Build(b);
  for (SimdLevel level : testing::AvailableLevels()) {
    EXPECT_EQ(IntersectCount(fa, fb, level), 2500u) << SimdLevelName(level);
  }
}

TEST(IntersectCrossIsaTest, MaxRepresentableValue) {
  // 0xFFFFFFFE is the largest legal element (0xFFFFFFFF is the sentinel).
  std::vector<uint32_t> a = {0, 1, 0xFFFFFFFEu};
  std::vector<uint32_t> b = {0xFFFFFFFEu, 5};
  FesiaSet fa = FesiaSet::Build(a);
  FesiaSet fb = FesiaSet::Build(b);
  for (SimdLevel level : testing::AvailableLevels()) {
    EXPECT_EQ(IntersectCount(fa, fb, level), 1u) << SimdLevelName(level);
  }
}

// Regression: with different bitmap sizes, a kernel vector over-read from
// the larger set's run can span N_small segments and land on an aliasing
// segment whose real element equals a broadcast element (double count).
// Found by fuzzing; fixed by the DispatchSafe guard in intersect_impl.h.
TEST(IntersectCrossIsaTest, DifferentBitmapAliasRegression) {
  std::vector<uint32_t> a = {3,  5,  7,  9,  15, 16, 20, 23, 24, 30, 33,
                             34, 47, 50, 59, 71, 72, 78, 79, 81, 82, 94};
  std::vector<uint32_t> b = {1,  8,  11, 12, 13, 14, 15, 17, 23, 24, 25, 26,
                             28, 29, 30, 31, 43, 45, 46, 48, 50, 52, 56, 57,
                             63, 66, 67, 68, 69, 75, 78, 84, 88, 91};
  FesiaSet fa = FesiaSet::Build(a);
  FesiaSet fb = FesiaSet::Build(b);
  ASSERT_NE(fa.bitmap_bits(), fb.bitmap_bits());
  size_t expected = datagen::ReferenceIntersectionSize(a, b);
  for (SimdLevel level : testing::AvailableLevels()) {
    EXPECT_EQ(IntersectCount(fa, fb, level), expected)
        << SimdLevelName(level);
  }
}

// Fuzz-style sweep over tiny sparse pairs with unequal bitmap sizes; these
// maximize the alias-hazard frequency.
TEST(IntersectCrossIsaTest, SmallSparseUnequalBitmapsFuzz) {
  Rng rng(99);
  for (int iter = 0; iter < 400; ++iter) {
    uint32_t na = 1 + static_cast<uint32_t>(rng.Below(40));
    uint32_t nb = 1 + static_cast<uint32_t>(rng.Below(40));
    uint32_t uni = 20 + static_cast<uint32_t>(rng.Below(300));
    auto a = datagen::SortedUniform(std::min(na, uni), uni, iter * 2 + 1);
    auto b = datagen::SortedUniform(std::min(nb, uni), uni, iter * 2 + 2);
    FesiaSet fa = FesiaSet::Build(a);
    FesiaSet fb = FesiaSet::Build(b);
    size_t expected = datagen::ReferenceIntersectionSize(a, b);
    for (SimdLevel level : testing::AvailableLevels()) {
      ASSERT_EQ(IntersectCount(fa, fb, level), expected)
          << "iter=" << iter << " " << SimdLevelName(level);
    }
  }
}

TEST(IntersectCrossIsaTest, AutoLevelMatchesExplicit) {
  SetPair pair = PairWithSelectivity(1000, 1000, 0.5, 9);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  EXPECT_EQ(IntersectCount(fa, fb, SimdLevel::kAuto),
            pair.intersection_size);
}

}  // namespace
}  // namespace fesia
