// FESIAhash (skewed-strategy) correctness.
#include "fesia/intersect_hash.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "datagen/datagen.h"
#include "fesia/intersect.h"
#include "test_util.h"

namespace fesia {
namespace {

using ::fesia::datagen::PairWithSelectivity;
using ::fesia::datagen::SetPair;
using ::fesia::testing::AvailableLevels;

TEST(IntersectHashTest, MatchesReferenceOnSkewedPairs) {
  for (SimdLevel level : AvailableLevels()) {
    for (size_t n_small : {10, 100, 1000}) {
      SetPair pair = PairWithSelectivity(n_small, 50000, 0.4,
                                         n_small + 1000);
      FesiaSet fa = FesiaSet::Build(pair.a);
      FesiaSet fb = FesiaSet::Build(pair.b);
      EXPECT_EQ(IntersectCountHash(fa, fb, level), pair.intersection_size)
          << SimdLevelName(level) << " n_small=" << n_small;
      // Argument order must not matter.
      EXPECT_EQ(IntersectCountHash(fb, fa, level), pair.intersection_size);
    }
  }
}

TEST(IntersectHashTest, MatchesMergeStrategyOnBalancedPairs) {
  SetPair pair = PairWithSelectivity(5000, 5000, 0.1, 42);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  for (SimdLevel level : AvailableLevels()) {
    EXPECT_EQ(IntersectCountHash(fa, fb, level),
              IntersectCount(fa, fb, level));
  }
}

TEST(IntersectHashTest, EmptyInputs) {
  FesiaSet empty = FesiaSet::Build({});
  FesiaSet some = FesiaSet::Build(std::vector<uint32_t>{1, 2, 3});
  EXPECT_EQ(IntersectCountHash(empty, some), 0u);
  EXPECT_EQ(IntersectCountHash(some, empty), 0u);
}

TEST(IntersectHashTest, WorksAcrossDifferentSegmentBits) {
  // The hash strategy only walks the larger set's structure, so the two
  // sets may even disagree on segment_bits.
  SetPair pair = PairWithSelectivity(50, 10000, 0.5, 7);
  FesiaParams p8;
  p8.segment_bits = 8;
  FesiaParams p32;
  p32.segment_bits = 32;
  FesiaSet fa = FesiaSet::Build(pair.a, p8);
  FesiaSet fb = FesiaSet::Build(pair.b, p32);
  EXPECT_EQ(IntersectCountHash(fa, fb), pair.intersection_size);
}

TEST(IntersectHashTest, StridePaddedSmallSideSkipsSentinels) {
  SetPair pair = PairWithSelectivity(64, 20000, 0.25, 13);
  FesiaParams p;
  p.kernel_stride = 8;  // small side's reordered array carries sentinels
  FesiaSet fa = FesiaSet::Build(pair.a, p);
  FesiaSet fb = FesiaSet::Build(pair.b);
  EXPECT_EQ(IntersectCountHash(fa, fb), pair.intersection_size);
}

TEST(IntersectHashTest, IntoMaterializesSortedResult) {
  SetPair pair = PairWithSelectivity(200, 30000, 0.3, 19);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  std::vector<uint32_t> out;
  size_t r = IntersectIntoHash(fa, fb, &out);
  std::vector<uint32_t> expected;
  std::set_intersection(pair.a.begin(), pair.a.end(), pair.b.begin(),
                        pair.b.end(), std::back_inserter(expected));
  ASSERT_EQ(r, expected.size());
  EXPECT_EQ(out, expected);
}

}  // namespace
}  // namespace fesia
