// k-way FESIA intersection correctness.
#include "fesia/intersect_kway.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "datagen/datagen.h"
#include "fesia/intersect.h"
#include "test_util.h"

namespace fesia {
namespace {

using ::fesia::datagen::KSetsWithDensity;
using ::fesia::datagen::ReferenceIntersection;
using ::fesia::testing::AvailableLevels;

std::vector<const FesiaSet*> Pointers(const std::vector<FesiaSet>& sets) {
  std::vector<const FesiaSet*> out;
  for (const FesiaSet& s : sets) out.push_back(&s);
  return out;
}

TEST(KWayTest, MatchesReferenceForVariousK) {
  for (size_t k : {2, 3, 4, 5}) {
    auto raw = KSetsWithDensity(k, 3000, 0.5, k * 100);
    size_t expected = ReferenceIntersection(raw).size();
    std::vector<FesiaSet> sets;
    for (const auto& r : raw) sets.push_back(FesiaSet::Build(r));
    auto ptrs = Pointers(sets);
    for (SimdLevel level : AvailableLevels()) {
      EXPECT_EQ(IntersectCountKWay(ptrs, level), expected)
          << "k=" << k << " level=" << SimdLevelName(level);
    }
  }
}

TEST(KWayTest, DensitySweep) {
  for (double density : {0.1, 0.3, 0.8}) {
    auto raw = KSetsWithDensity(3, 2000, density, 77);
    size_t expected = ReferenceIntersection(raw).size();
    std::vector<FesiaSet> sets;
    for (const auto& r : raw) sets.push_back(FesiaSet::Build(r));
    auto ptrs = Pointers(sets);
    EXPECT_EQ(IntersectCountKWay(ptrs), expected) << "density=" << density;
  }
}

TEST(KWayTest, DegenerateArities) {
  auto raw = KSetsWithDensity(1, 500, 0.5, 3);
  std::vector<FesiaSet> sets;
  sets.push_back(FesiaSet::Build(raw[0]));
  auto ptrs = Pointers(sets);
  EXPECT_EQ(IntersectCountKWay(ptrs), raw[0].size());
  EXPECT_EQ(IntersectCountKWay(std::span<const FesiaSet* const>{}), 0u);
}

TEST(KWayTest, AnyEmptySetYieldsEmptyIntersection) {
  auto raw = KSetsWithDensity(2, 1000, 0.9, 5);
  std::vector<FesiaSet> sets;
  for (const auto& r : raw) sets.push_back(FesiaSet::Build(r));
  sets.push_back(FesiaSet::Build({}));
  auto ptrs = Pointers(sets);
  EXPECT_EQ(IntersectCountKWay(ptrs), 0u);
}

TEST(KWayTest, MixedSizesAndBitmaps) {
  // Sets of very different sizes -> different bitmap sizes -> wrap paths.
  std::vector<std::vector<uint32_t>> raw;
  raw.push_back(datagen::SortedUniform(100, 5000, 1));
  raw.push_back(datagen::SortedUniform(2000, 5000, 2));
  raw.push_back(datagen::SortedUniform(40000, 50000, 3));
  size_t expected = ReferenceIntersection(raw).size();
  std::vector<FesiaSet> sets;
  for (const auto& r : raw) sets.push_back(FesiaSet::Build(r));
  auto ptrs = Pointers(sets);
  for (SimdLevel level : AvailableLevels()) {
    EXPECT_EQ(IntersectCountKWay(ptrs, level), expected)
        << SimdLevelName(level);
  }
}

TEST(KWayTest, TwoWayAgreesWithPairwise) {
  auto raw = KSetsWithDensity(2, 4000, 0.4, 11);
  std::vector<FesiaSet> sets;
  for (const auto& r : raw) sets.push_back(FesiaSet::Build(r));
  auto ptrs = Pointers(sets);
  EXPECT_EQ(IntersectCountKWay(ptrs), IntersectCount(sets[0], sets[1]));
}

TEST(KWayTest, StridePaddedSetsAgree) {
  auto raw = KSetsWithDensity(3, 1500, 0.6, 23);
  size_t expected = ReferenceIntersection(raw).size();
  FesiaParams p;
  p.kernel_stride = 4;
  std::vector<FesiaSet> sets;
  for (const auto& r : raw) sets.push_back(FesiaSet::Build(r, p));
  auto ptrs = Pointers(sets);
  EXPECT_EQ(IntersectCountKWay(ptrs), expected);
}

TEST(KWayTest, IntoMaterializesExactElements) {
  auto raw = KSetsWithDensity(3, 2500, 0.5, 31);
  std::vector<uint32_t> expected = ReferenceIntersection(raw);
  std::vector<FesiaSet> sets;
  for (const auto& r : raw) sets.push_back(FesiaSet::Build(r));
  auto ptrs = Pointers(sets);
  std::vector<uint32_t> out;
  size_t r = IntersectIntoKWay(ptrs, &out);
  ASSERT_EQ(r, expected.size());
  EXPECT_EQ(out, expected);
}

// --- Multicore k-way (segment-range partitioning) ---------------------------

TEST(KWayParallelTest, CountMatchesSerialAcrossKThreadsLevels) {
  for (size_t k : {2, 3, 5}) {
    auto raw = KSetsWithDensity(k, 20000, 0.4, k * 7);
    std::vector<FesiaSet> sets;
    for (const auto& r : raw) sets.push_back(FesiaSet::Build(r));
    auto ptrs = Pointers(sets);
    for (SimdLevel level : AvailableLevels()) {
      size_t expected = IntersectCountKWay(ptrs, level);
      for (size_t threads : {1, 2, 3, 4, 8}) {
        EXPECT_EQ(IntersectCountKWayParallel(ptrs, threads, level), expected)
            << "k=" << k << " level=" << SimdLevelName(level)
            << " threads=" << threads;
      }
    }
  }
}

TEST(KWayParallelTest, IntoMatchesReferenceElements) {
  auto raw = KSetsWithDensity(3, 15000, 0.5, 41);
  std::vector<uint32_t> expected = ReferenceIntersection(raw);
  std::vector<FesiaSet> sets;
  for (const auto& r : raw) sets.push_back(FesiaSet::Build(r));
  auto ptrs = Pointers(sets);
  for (size_t threads : {2, 4, 7}) {
    std::vector<uint32_t> out;
    size_t r = IntersectIntoKWayParallel(ptrs, &out, threads);
    ASSERT_EQ(r, expected.size()) << "threads=" << threads;
    EXPECT_EQ(out, expected) << "threads=" << threads;
  }
}

TEST(KWayParallelTest, IntoUnsortedHasSameElements) {
  auto raw = KSetsWithDensity(3, 8000, 0.5, 43);
  std::vector<uint32_t> expected = ReferenceIntersection(raw);
  std::vector<FesiaSet> sets;
  for (const auto& r : raw) sets.push_back(FesiaSet::Build(r));
  auto ptrs = Pointers(sets);
  std::vector<uint32_t> out;
  IntersectIntoKWayParallel(ptrs, &out, 4, /*sort_output=*/false);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, expected);
}

TEST(KWayParallelTest, MixedSizesAndBitmaps) {
  std::vector<std::vector<uint32_t>> raw;
  raw.push_back(datagen::SortedUniform(300, 5000, 51));
  raw.push_back(datagen::SortedUniform(4000, 5000, 52));
  raw.push_back(datagen::SortedUniform(60000, 80000, 53));
  size_t expected = ReferenceIntersection(raw).size();
  std::vector<FesiaSet> sets;
  for (const auto& r : raw) sets.push_back(FesiaSet::Build(r));
  auto ptrs = Pointers(sets);
  for (size_t threads : {2, 4}) {
    EXPECT_EQ(IntersectCountKWayParallel(ptrs, threads), expected)
        << "threads=" << threads;
  }
}

TEST(KWayParallelTest, DegenerateArities) {
  auto raw = KSetsWithDensity(1, 500, 0.5, 3);
  std::vector<FesiaSet> sets;
  sets.push_back(FesiaSet::Build(raw[0]));
  auto ptrs = Pointers(sets);
  EXPECT_EQ(IntersectCountKWayParallel(ptrs, 4), raw[0].size());
  EXPECT_EQ(
      IntersectCountKWayParallel(std::span<const FesiaSet* const>{}, 4), 0u);
  std::vector<uint32_t> out = {9};
  EXPECT_EQ(IntersectIntoKWayParallel(std::span<const FesiaSet* const>{},
                                      &out, 4),
            0u);
  EXPECT_TRUE(out.empty());
}

TEST(KWayParallelTest, AnyEmptySetYieldsEmptyIntersection) {
  auto raw = KSetsWithDensity(2, 1000, 0.9, 5);
  std::vector<FesiaSet> sets;
  for (const auto& r : raw) sets.push_back(FesiaSet::Build(r));
  sets.push_back(FesiaSet::Build({}));
  auto ptrs = Pointers(sets);
  EXPECT_EQ(IntersectCountKWayParallel(ptrs, 4), 0u);
}

TEST(KWayParallelTest, CustomExecutorPool) {
  auto raw = KSetsWithDensity(3, 10000, 0.4, 61);
  std::vector<FesiaSet> sets;
  for (const auto& r : raw) sets.push_back(FesiaSet::Build(r));
  auto ptrs = Pointers(sets);
  size_t expected = IntersectCountKWay(ptrs);
  ThreadPool pool(2);
  Executor exec(&pool);
  EXPECT_EQ(IntersectCountKWayParallel(ptrs, 4, SimdLevel::kAuto, exec),
            expected);
}

// --- Cancellation ------------------------------------------------------------

TEST(KWayCancelTest, GenerousDeadlineDoesNotChangeResults) {
  auto raw = KSetsWithDensity(3, 20000, 0.4, 71);
  std::vector<uint32_t> expected = ReferenceIntersection(raw);
  std::vector<FesiaSet> sets;
  for (const auto& r : raw) sets.push_back(FesiaSet::Build(r));
  auto ptrs = Pointers(sets);
  CancelContext cancel(Deadline::After(300));
  ASSERT_TRUE(cancel.active());

  bool stopped = true;
  EXPECT_EQ(IntersectCountKWayCancellable(ptrs, cancel, SimdLevel::kAuto,
                                          &stopped),
            expected.size());
  EXPECT_FALSE(stopped);
  for (size_t threads : {1, 2, 4}) {
    stopped = true;
    EXPECT_EQ(IntersectCountKWayParallel(ptrs, threads, SimdLevel::kAuto, {},
                                         cancel, &stopped),
              expected.size())
        << "threads=" << threads;
    EXPECT_FALSE(stopped);
    std::vector<uint32_t> out;
    stopped = true;
    EXPECT_EQ(IntersectIntoKWayParallel(ptrs, &out, threads, true,
                                        SimdLevel::kAuto, {}, cancel,
                                        &stopped),
              expected.size())
        << "threads=" << threads;
    EXPECT_FALSE(stopped);
    EXPECT_EQ(out, expected) << "threads=" << threads;
  }
  std::vector<uint32_t> out;
  stopped = true;
  EXPECT_EQ(IntersectIntoKWayCancellable(ptrs, &out, cancel, true,
                                         SimdLevel::kAuto, &stopped),
            expected.size());
  EXPECT_FALSE(stopped);
  EXPECT_EQ(out, expected);
}

TEST(KWayCancelTest, PreCancelledTokenStopsEveryEntryPoint) {
  auto raw = KSetsWithDensity(3, 20000, 0.4, 72);
  std::vector<FesiaSet> sets;
  for (const auto& r : raw) sets.push_back(FesiaSet::Build(r));
  auto ptrs = Pointers(sets);
  CancellationToken token = CancellationToken::Create();
  token.Cancel();
  CancelContext cancel(token);

  bool stopped = false;
  (void)IntersectCountKWayCancellable(ptrs, cancel, SimdLevel::kAuto,
                                      &stopped);
  EXPECT_TRUE(stopped);
  stopped = false;
  (void)IntersectCountKWayParallel(ptrs, 4, SimdLevel::kAuto, {}, cancel,
                                   &stopped);
  EXPECT_TRUE(stopped);
  std::vector<uint32_t> out;
  stopped = false;
  (void)IntersectIntoKWayCancellable(ptrs, &out, cancel, true,
                                     SimdLevel::kAuto, &stopped);
  EXPECT_TRUE(stopped);
  stopped = false;
  (void)IntersectIntoKWayParallel(ptrs, &out, 4, true, SimdLevel::kAuto, {},
                                  cancel, &stopped);
  EXPECT_TRUE(stopped);
}

// Builds k sets whose bitmaps land on exactly `words` 64-bit words:
// bitmap_scale * n = words * 64 is a power of two, so Build's round-up
// keeps it bit-exact. Lets the cancellation tests pin the word range the
// k-way pipeline polls over (kKWayCancelWords-word groups) directly onto
// the group boundary.
std::vector<FesiaSet> KSetsWithWords(size_t k, uint32_t words, uint64_t seed,
                                     std::vector<uint32_t>* expected) {
  size_t n = size_t{words} * 16;
  FesiaParams p;
  p.segment_bits = 16;
  p.bitmap_scale = 4.0;  // 4 * (16 * words) = words * 64 bits exactly
  auto raw = KSetsWithDensity(k, n, 0.4, seed);
  *expected = ReferenceIntersection(raw);
  std::vector<FesiaSet> sets;
  for (const auto& r : raw) sets.push_back(FesiaSet::Build(r, p));
  return sets;
}

TEST(KWayCancelTest, WordGroupBoundaryWordCountsStayExact) {
  // The k-way polling loops walk kKWayCancelWords bitmap words per poll;
  // this pins the shared word count below / exactly at / above one and
  // several poll groups, then sweeps thread counts that do not divide the
  // group count evenly (64 words over 3 threads -> 22/21/21 words), so
  // per-thread word ranges straddle group boundaries at odd offsets. An
  // active context with a generous deadline must never change a result.
  static_assert(kKWayCancelWords == 32,
                "word sweep below assumes 32-word poll groups");
  for (uint32_t words : {16u, 32u, 64u, 256u}) {
    std::vector<uint32_t> expected;
    std::vector<FesiaSet> sets = KSetsWithWords(3, words, 80 + words,
                                                &expected);
    auto ptrs = Pointers(sets);
    for (const FesiaSet& s : sets) {
      ASSERT_EQ(s.bitmap_word_count(), words);
    }
    ASSERT_EQ(IntersectCountKWay(ptrs), expected.size());
    CancelContext cancel(Deadline::After(300));
    ASSERT_TRUE(cancel.active());

    bool stopped = true;
    EXPECT_EQ(IntersectCountKWayCancellable(ptrs, cancel, SimdLevel::kAuto,
                                            &stopped),
              expected.size())
        << "words=" << words;
    EXPECT_FALSE(stopped);
    std::vector<uint32_t> out;
    stopped = true;
    EXPECT_EQ(IntersectIntoKWayCancellable(ptrs, &out, cancel, true,
                                           SimdLevel::kAuto, &stopped),
              expected.size())
        << "words=" << words;
    EXPECT_FALSE(stopped);
    EXPECT_EQ(out, expected) << "words=" << words;

    for (size_t threads : {1, 2, 3, 4, 5}) {
      stopped = true;
      EXPECT_EQ(IntersectCountKWayParallel(ptrs, threads, SimdLevel::kAuto,
                                           {}, cancel, &stopped),
                expected.size())
          << "words=" << words << " threads=" << threads;
      EXPECT_FALSE(stopped);
      stopped = true;
      EXPECT_EQ(IntersectIntoKWayParallel(ptrs, &out, threads, true,
                                          SimdLevel::kAuto, {}, cancel,
                                          &stopped),
                expected.size())
          << "words=" << words << " threads=" << threads;
      EXPECT_FALSE(stopped);
      EXPECT_EQ(out, expected) << "words=" << words
                               << " threads=" << threads;
    }
  }
}

TEST(KWayCancelTest, PreCancelledStopsBelowOnePollGroup) {
  // A job whose whole word range is smaller than one kKWayCancelWords
  // group must still observe the token: the poll happens before the first
  // group, not only between groups.
  std::vector<uint32_t> expected;
  std::vector<FesiaSet> sets = KSetsWithWords(3, kKWayCancelWords / 2, 91,
                                              &expected);
  auto ptrs = Pointers(sets);
  ASSERT_LT(sets[0].bitmap_word_count(), kKWayCancelWords);
  CancellationToken token = CancellationToken::Create();
  token.Cancel();
  CancelContext cancel(token);

  bool stopped = false;
  (void)IntersectCountKWayCancellable(ptrs, cancel, SimdLevel::kAuto,
                                      &stopped);
  EXPECT_TRUE(stopped);
  std::vector<uint32_t> out;
  stopped = false;
  (void)IntersectIntoKWayCancellable(ptrs, &out, cancel, true,
                                     SimdLevel::kAuto, &stopped);
  EXPECT_TRUE(stopped);
  for (size_t threads : {1, 3, 5}) {
    stopped = false;
    (void)IntersectCountKWayParallel(ptrs, threads, SimdLevel::kAuto, {},
                                     cancel, &stopped);
    EXPECT_TRUE(stopped) << "threads=" << threads;
    stopped = false;
    (void)IntersectIntoKWayParallel(ptrs, &out, threads, true,
                                    SimdLevel::kAuto, {}, cancel, &stopped);
    EXPECT_TRUE(stopped) << "threads=" << threads;
  }
}

TEST(KWayCancelTest, MidFlightCancelNeverTearsOutput) {
  // A watcher thread cancels while materializing k-way calls run. Either
  // outcome is legal, but never a torn one: a call that reports !stopped
  // must have produced the exact sorted intersection.
  auto raw = KSetsWithDensity(4, 60000, 0.5, 73);
  std::vector<uint32_t> expected = ReferenceIntersection(raw);
  std::vector<FesiaSet> sets;
  for (const auto& r : raw) sets.push_back(FesiaSet::Build(r));
  auto ptrs = Pointers(sets);
  for (int trial = 0; trial < 8; ++trial) {
    size_t threads = 2 + static_cast<size_t>(trial % 4);
    CancellationToken token = CancellationToken::Create();
    std::thread watcher([&] { token.Cancel(); });
    std::vector<uint32_t> out;
    bool stopped = false;
    size_t r = IntersectIntoKWayParallel(ptrs, &out, threads, true,
                                         SimdLevel::kAuto, {},
                                         CancelContext(token), &stopped);
    watcher.join();
    if (!stopped) {
      ASSERT_EQ(r, expected.size()) << "trial=" << trial;
      EXPECT_EQ(out, expected) << "trial=" << trial;
    }
  }
}

}  // namespace
}  // namespace fesia
