// FesiaSet serialization round-trips and corruption rejection.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datagen/datagen.h"
#include "fesia/fesia.h"
#include "test_util.h"

namespace fesia {
namespace {

using ::fesia::datagen::PairWithSelectivity;
using ::fesia::datagen::SortedUniform;
using ::fesia::testing::AvailableLevels;

void ExpectEquivalent(const FesiaSet& a, const FesiaSet& b) {
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.bitmap_bits(), b.bitmap_bits());
  EXPECT_EQ(a.segment_bits(), b.segment_bits());
  EXPECT_EQ(a.kernel_stride(), b.kernel_stride());
  EXPECT_EQ(a.ToSortedVector(), b.ToSortedVector());
  // Deep structural equality.
  ASSERT_EQ(a.reordered_size(), b.reordered_size());
  for (uint32_t i = 0; i < a.reordered_size(); ++i) {
    ASSERT_EQ(a.reordered()[i], b.reordered()[i]) << i;
  }
  for (uint32_t s = 0; s <= a.num_segments(); ++s) {
    ASSERT_EQ(a.offsets()[s], b.offsets()[s]) << s;
  }
  for (size_t w = 0; w < a.bitmap_word_count(); ++w) {
    ASSERT_EQ(a.bitmap_words()[w], b.bitmap_words()[w]) << w;
  }
}

TEST(SerializeTest, RoundTripBasic) {
  FesiaSet set = FesiaSet::Build(SortedUniform(5000, 1u << 22, 1));
  std::vector<uint8_t> bytes = set.Serialize();
  FesiaSet restored;
  ASSERT_TRUE(FesiaSet::Deserialize(bytes, &restored));
  ExpectEquivalent(set, restored);
}

TEST(SerializeTest, RoundTripAllShapes) {
  for (int s : {8, 16, 32}) {
    for (int stride : {1, 4}) {
      FesiaParams p;
      p.segment_bits = s;
      p.kernel_stride = stride;
      FesiaSet set = FesiaSet::Build(SortedUniform(2000, 1u << 20, s), p);
      std::vector<uint8_t> bytes = set.Serialize();
      FesiaSet restored;
      ASSERT_TRUE(FesiaSet::Deserialize(bytes, &restored))
          << "s=" << s << " stride=" << stride;
      ExpectEquivalent(set, restored);
    }
  }
}

TEST(SerializeTest, RoundTripEmptySet) {
  FesiaSet set = FesiaSet::Build({});
  std::vector<uint8_t> bytes = set.Serialize();
  FesiaSet restored;
  ASSERT_TRUE(FesiaSet::Deserialize(bytes, &restored));
  EXPECT_TRUE(restored.empty());
}

TEST(SerializeTest, DeserializedSetIntersectsCorrectly) {
  auto pair = PairWithSelectivity(8000, 8000, 0.05, 7);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  FesiaSet ra, rb;
  ASSERT_TRUE(FesiaSet::Deserialize(fa.Serialize(), &ra));
  ASSERT_TRUE(FesiaSet::Deserialize(fb.Serialize(), &rb));
  for (SimdLevel level : AvailableLevels()) {
    EXPECT_EQ(IntersectCount(ra, rb, level), pair.intersection_size)
        << SimdLevelName(level);
    EXPECT_EQ(IntersectCountHash(ra, rb, level), pair.intersection_size);
  }
}

TEST(SerializeTest, RejectsBadMagic) {
  FesiaSet set = FesiaSet::Build(SortedUniform(100, 1000, 2));
  std::vector<uint8_t> bytes = set.Serialize();
  bytes[0] ^= 0xFF;
  FesiaSet out;
  EXPECT_FALSE(FesiaSet::Deserialize(bytes, &out));
}

TEST(SerializeTest, RejectsTruncation) {
  FesiaSet set = FesiaSet::Build(SortedUniform(100, 1000, 3));
  std::vector<uint8_t> bytes = set.Serialize();
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{12},
                     size_t{0}}) {
    FesiaSet out;
    EXPECT_FALSE(FesiaSet::Deserialize(
        std::span<const uint8_t>(bytes.data(), cut), &out))
        << "cut=" << cut;
  }
}

TEST(SerializeTest, RejectsTrailingGarbage) {
  FesiaSet set = FesiaSet::Build(SortedUniform(100, 1000, 4));
  std::vector<uint8_t> bytes = set.Serialize();
  bytes.push_back(0);
  FesiaSet out;
  EXPECT_FALSE(FesiaSet::Deserialize(bytes, &out));
}

TEST(SerializeTest, RejectsCorruptedOffsets) {
  FesiaSet set = FesiaSet::Build(SortedUniform(500, 10000, 5));
  std::vector<uint8_t> bytes = set.Serialize();
  // The offsets array sits after the bitmap; flipping a high byte in the
  // middle of the buffer breaks monotonicity or the final-total invariant.
  bytes[bytes.size() / 2 + 3] ^= 0x80;
  FesiaSet out;
  // Either rejected outright, or (if the flip hit the bitmap) the magic and
  // structure still validate; in that case intersecting must still be safe.
  if (FesiaSet::Deserialize(bytes, &out)) {
    FesiaSet other = FesiaSet::Build(SortedUniform(500, 10000, 6));
    (void)IntersectCount(out, other);  // must not crash
  }
}

TEST(SerializeTest, VersionedFormatIsStable) {
  // A serialized set must start with the magic tag "FESIASET".
  FesiaSet set = FesiaSet::Build(SortedUniform(10, 100, 7));
  std::vector<uint8_t> bytes = set.Serialize();
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(std::string(bytes.begin(), bytes.begin() + 8), "FESIASET");
}

}  // namespace
}  // namespace fesia
