// FesiaSet serialization round-trips and corruption rejection.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "datagen/datagen.h"
#include "fesia/fesia.h"
#include "test_util.h"
#include "util/crc32c.h"
#include "util/fault_injection.h"

namespace fesia {
namespace {

using ::fesia::datagen::PairWithSelectivity;
using ::fesia::datagen::SortedUniform;
using ::fesia::testing::AvailableLevels;

void ExpectEquivalent(const FesiaSet& a, const FesiaSet& b) {
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.bitmap_bits(), b.bitmap_bits());
  EXPECT_EQ(a.segment_bits(), b.segment_bits());
  EXPECT_EQ(a.kernel_stride(), b.kernel_stride());
  EXPECT_EQ(a.ToSortedVector(), b.ToSortedVector());
  // Deep structural equality.
  ASSERT_EQ(a.reordered_size(), b.reordered_size());
  for (uint32_t i = 0; i < a.reordered_size(); ++i) {
    ASSERT_EQ(a.reordered()[i], b.reordered()[i]) << i;
  }
  for (uint32_t s = 0; s <= a.num_segments(); ++s) {
    ASSERT_EQ(a.offsets()[s], b.offsets()[s]) << s;
  }
  for (size_t w = 0; w < a.bitmap_word_count(); ++w) {
    ASSERT_EQ(a.bitmap_words()[w], b.bitmap_words()[w]) << w;
  }
}

// Recomputes the v2 CRC32C footer after a test tampers with the payload,
// so deep validation (not the checksum) is what rejects the blob.
void FixCrc(std::vector<uint8_t>* bytes) {
  uint32_t crc = Crc32c(bytes->data(), bytes->size() - sizeof(uint32_t));
  std::memcpy(bytes->data() + bytes->size() - sizeof(uint32_t), &crc,
              sizeof(uint32_t));
}

TEST(SerializeTest, RoundTripBasic) {
  FesiaSet set = FesiaSet::Build(SortedUniform(5000, 1u << 22, 1));
  std::vector<uint8_t> bytes = set.Serialize();
  FesiaSet restored;
  ASSERT_TRUE(FesiaSet::Deserialize(bytes, &restored).ok());
  ExpectEquivalent(set, restored);
}

TEST(SerializeTest, RoundTripAllShapes) {
  for (int s : {8, 16, 32}) {
    for (int stride : {1, 4}) {
      FesiaParams p;
      p.segment_bits = s;
      p.kernel_stride = stride;
      FesiaSet set = FesiaSet::Build(SortedUniform(2000, 1u << 20, s), p);
      std::vector<uint8_t> bytes = set.Serialize();
      FesiaSet restored;
      ASSERT_TRUE(FesiaSet::Deserialize(bytes, &restored).ok())
          << "s=" << s << " stride=" << stride;
      ExpectEquivalent(set, restored);
    }
  }
}

TEST(SerializeTest, RoundTripEmptySet) {
  FesiaSet set = FesiaSet::Build({});
  std::vector<uint8_t> bytes = set.Serialize();
  FesiaSet restored;
  ASSERT_TRUE(FesiaSet::Deserialize(bytes, &restored).ok());
  EXPECT_TRUE(restored.empty());
}

TEST(SerializeTest, DeserializedSetIntersectsCorrectly) {
  auto pair = PairWithSelectivity(8000, 8000, 0.05, 7);
  FesiaSet fa = FesiaSet::Build(pair.a);
  FesiaSet fb = FesiaSet::Build(pair.b);
  FesiaSet ra, rb;
  ASSERT_TRUE(FesiaSet::Deserialize(fa.Serialize(), &ra).ok());
  ASSERT_TRUE(FesiaSet::Deserialize(fb.Serialize(), &rb).ok());
  for (SimdLevel level : AvailableLevels()) {
    EXPECT_EQ(IntersectCount(ra, rb, level), pair.intersection_size)
        << SimdLevelName(level);
    EXPECT_EQ(IntersectCountHash(ra, rb, level), pair.intersection_size);
  }
}

TEST(SerializeTest, RejectsBadMagic) {
  FesiaSet set = FesiaSet::Build(SortedUniform(100, 1000, 2));
  std::vector<uint8_t> bytes = set.Serialize();
  bytes[0] ^= 0xFF;
  FesiaSet out;
  Status s = FesiaSet::Deserialize(bytes, &out);
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
}

TEST(SerializeTest, RejectsTruncation) {
  FesiaSet set = FesiaSet::Build(SortedUniform(100, 1000, 3));
  std::vector<uint8_t> bytes = set.Serialize();
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{12},
                     size_t{0}}) {
    FesiaSet out;
    EXPECT_FALSE(FesiaSet::Deserialize(
        std::span<const uint8_t>(bytes.data(), cut), &out).ok())
        << "cut=" << cut;
  }
}

TEST(SerializeTest, TruncationSweepNeverCrashes) {
  FesiaSet set = FesiaSet::Build(SortedUniform(300, 5000, 11));
  std::vector<uint8_t> bytes = set.Serialize();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    FesiaSet out;
    EXPECT_FALSE(FesiaSet::Deserialize(
        std::span<const uint8_t>(bytes.data(), cut), &out).ok())
        << "cut=" << cut;
  }
}

TEST(SerializeTest, EveryByteFlipRejected) {
  // The CRC32C footer detects any single-byte corruption unconditionally,
  // so flipping each byte in turn must always yield a clean non-OK Status.
  FesiaSet set = FesiaSet::Build(SortedUniform(200, 4000, 9));
  std::vector<uint8_t> bytes = set.Serialize();
  for (size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] ^= 0xFF;
    FesiaSet out;
    Status s = FesiaSet::Deserialize(bytes, &out);
    EXPECT_FALSE(s.ok()) << "byte " << i << " flip accepted";
    bytes[i] ^= 0xFF;
  }
  // The pristine blob still loads.
  FesiaSet out;
  EXPECT_TRUE(FesiaSet::Deserialize(bytes, &out).ok());
}

TEST(SerializeTest, RejectsTrailingGarbage) {
  FesiaSet set = FesiaSet::Build(SortedUniform(100, 1000, 4));
  std::vector<uint8_t> bytes = set.Serialize();
  bytes.push_back(0);
  FesiaSet out;
  EXPECT_FALSE(FesiaSet::Deserialize(bytes, &out).ok());
}

TEST(SerializeTest, RejectsCorruptedOffsets) {
  FesiaSet set = FesiaSet::Build(SortedUniform(500, 10000, 5));
  std::vector<uint8_t> bytes = set.Serialize();
  bytes[bytes.size() / 2 + 3] ^= 0x80;
  FesiaSet out;
  // Since v2 every storage flip is caught by the checksum.
  Status s = FesiaSet::Deserialize(bytes, &out);
  ASSERT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("checksum"), std::string::npos) << s.ToString();
}

TEST(SerializeTest, DeepValidationRejectsTamperedElement) {
  // Overwrite the last reordered element (just before the footer) with a
  // value that hashes elsewhere, then re-stamp the CRC: the checksum passes
  // and the re-hash membership check must catch it instead.
  FesiaSet set = FesiaSet::Build(SortedUniform(500, 10000, 6));
  std::vector<uint8_t> bytes = set.Serialize();
  uint32_t* last_element = reinterpret_cast<uint32_t*>(
      bytes.data() + bytes.size() - 2 * sizeof(uint32_t));
  *last_element ^= 0x55555;
  FixCrc(&bytes);
  FesiaSet out;
  Status s = FesiaSet::Deserialize(bytes, &out);
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
  EXPECT_EQ(s.message().find("checksum"), std::string::npos) << s.ToString();
}

TEST(SerializeTest, RejectsOutOfRangeSimdLevel) {
  // simd_level sits at byte 36 (magic 8 + version 4 + four u32 + f64).
  FesiaSet set = FesiaSet::Build(SortedUniform(100, 1000, 8));
  std::vector<uint8_t> bytes = set.Serialize();
  uint32_t bogus = 57;
  std::memcpy(bytes.data() + 36, &bogus, sizeof(bogus));
  FixCrc(&bytes);
  FesiaSet out;
  Status s = FesiaSet::Deserialize(bytes, &out);
  ASSERT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("simd_level"), std::string::npos)
      << s.ToString();
}

TEST(SerializeTest, RejectsOversizedSectionCount) {
  // A section count claiming more elements than the blob holds must be
  // rejected without the count * sizeof overflowing. Counts start at
  // byte 40; reordered_count is the third u64.
  FesiaSet set = FesiaSet::Build(SortedUniform(100, 1000, 12));
  std::vector<uint8_t> bytes = set.Serialize();
  uint64_t huge = ~uint64_t{0} / 2;
  std::memcpy(bytes.data() + 40 + 16, &huge, sizeof(huge));
  FixCrc(&bytes);
  FesiaSet out;
  Status s = FesiaSet::Deserialize(bytes, &out);
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
}

TEST(SerializeTest, AllocationFaultSurfacesAsStatus) {
  FesiaSet set = FesiaSet::Build(SortedUniform(100, 1000, 13));
  std::vector<uint8_t> bytes = set.Serialize();
  fault::ScopedFault fault(fault::FaultPoint::kAllocation);
  FesiaSet out;
  Status s = FesiaSet::Deserialize(bytes, &out);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
  // The fault fired once and disarmed; a retry succeeds.
  EXPECT_TRUE(FesiaSet::Deserialize(bytes, &out).ok());
}

TEST(SerializeTest, ReadsLegacyV1Format) {
  // Hand-write the v1 layout (inline counts, no checksum) from a built
  // set's sections: old snapshots must stay loadable.
  FesiaSet set = FesiaSet::Build(SortedUniform(800, 20000, 10));
  std::vector<uint8_t> v1;
  auto put = [&v1](const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    v1.insert(v1.end(), b, b + n);
  };
  auto put_u32 = [&](uint32_t v) { put(&v, 4); };
  auto put_u64 = [&](uint64_t v) { put(&v, 8); };
  put_u64(0x5445534149534546ull);  // "FESIASET"
  put_u32(1);                      // version
  put_u32(set.size());
  put_u32(set.bitmap_bits());
  put_u32(static_cast<uint32_t>(set.segment_bits()));
  put_u32(static_cast<uint32_t>(set.kernel_stride()));
  double scale = set.params().bitmap_scale;
  put(&scale, 8);
  put_u32(static_cast<uint32_t>(set.params().simd_level));
  put_u64(set.bitmap_word_count());
  put(set.bitmap_words(), set.bitmap_word_count() * 8);
  put_u64(set.num_segments() + 1);
  put(set.offsets(), (set.num_segments() + 1) * 4);
  put_u64(set.reordered_size());
  put(set.reordered(), set.reordered_size() * 4);

  FesiaSet restored;
  ASSERT_TRUE(FesiaSet::Deserialize(v1, &restored).ok());
  ExpectEquivalent(set, restored);

  // v1 has no checksum, but deep validation still rejects tampering that
  // breaks structure: zero a byte inside the bitmap section.
  std::vector<uint8_t> bad = v1;
  bad[52] ^= 0xFF;
  FesiaSet out;
  EXPECT_FALSE(FesiaSet::Deserialize(bad, &out).ok());
}

TEST(SerializeTest, VersionedFormatIsStable) {
  // A serialized set must start with the magic tag "FESIASET".
  FesiaSet set = FesiaSet::Build(SortedUniform(10, 100, 7));
  std::vector<uint8_t> bytes = set.Serialize();
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(std::string(bytes.begin(), bytes.begin() + 8), "FESIASET");
  // And carry version 2 plus a CRC32C footer over every preceding byte.
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 8, 4);
  EXPECT_EQ(version, 2u);
  uint32_t stored = 0;
  std::memcpy(&stored, bytes.data() + bytes.size() - 4, 4);
  EXPECT_EQ(stored, Crc32c(bytes.data(), bytes.size() - 4));
}

}  // namespace
}  // namespace fesia
