// Triangle counting across all intersection backends.
#include "graph/triangle.h"

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "graph/generators.h"
#include "test_util.h"

namespace fesia::graph {
namespace {

using ::fesia::testing::AvailableLevels;

// K4: 4 triangles. K4 plus a pendant vertex: still 4.
Graph CompleteGraph(uint32_t n) {
  std::vector<Edge> edges;
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = u + 1; v < n; ++v) edges.push_back({u, v});
  }
  return Graph::FromEdges(n, edges);
}

TEST(TriangleTest, KnownSmallGraphs) {
  Graph k3 = CompleteGraph(3);
  Graph k4 = CompleteGraph(4);
  Graph k5 = CompleteGraph(5);
  const auto* scalar = baselines::FindBaseline("Scalar");
  ASSERT_NE(scalar, nullptr);
  EXPECT_EQ(CountTriangles(k3.DegreeOrientedDag(), scalar->fn), 1u);
  EXPECT_EQ(CountTriangles(k4.DegreeOrientedDag(), scalar->fn), 4u);
  EXPECT_EQ(CountTriangles(k5.DegreeOrientedDag(), scalar->fn), 10u);
}

TEST(TriangleTest, TriangleFreeGraph) {
  // A star has no triangles.
  std::vector<Edge> edges;
  for (uint32_t v = 1; v < 50; ++v) edges.push_back({0, v});
  Graph star = Graph::FromEdges(50, edges);
  const auto* scalar = baselines::FindBaseline("Scalar");
  EXPECT_EQ(CountTriangles(star.DegreeOrientedDag(), scalar->fn), 0u);
}

TEST(TriangleTest, AllBaselinesAgreeOnRmat) {
  RmatParams p;
  p.num_nodes = 1 << 10;
  p.num_edges = 8 << 10;
  Graph g = GenerateRmatGraph(p);
  Graph dag = g.DegreeOrientedDag();
  uint64_t expected =
      CountTriangles(dag, baselines::FindBaseline("Scalar")->fn);
  for (const auto& m : baselines::AllBaselines()) {
    EXPECT_EQ(CountTriangles(dag, m.fn), expected) << m.name;
  }
}

TEST(TriangleTest, FesiaAgreesOnRmatAllLevels) {
  RmatParams p;
  p.num_nodes = 1 << 10;
  p.num_edges = 8 << 10;
  Graph g = GenerateRmatGraph(p);
  Graph dag = g.DegreeOrientedDag();
  uint64_t expected =
      CountTriangles(dag, baselines::FindBaseline("Scalar")->fn);
  FesiaTriangleCounter counter(&dag, FesiaParams{});
  EXPECT_GT(counter.construction_seconds(), 0.0);
  EXPECT_GT(counter.memory_bytes(), 0u);
  for (SimdLevel level : AvailableLevels()) {
    EXPECT_EQ(counter.Count(level), expected) << SimdLevelName(level);
  }
}

TEST(TriangleTest, FesiaParallelAgrees) {
  RmatParams p;
  p.num_nodes = 1 << 9;
  p.num_edges = 4 << 9;
  Graph dag = GenerateRmatGraph(p).DegreeOrientedDag();
  uint64_t expected =
      CountTriangles(dag, baselines::FindBaseline("Scalar")->fn);
  FesiaTriangleCounter counter(&dag, FesiaParams{});
  for (size_t threads : {1, 2, 4}) {
    EXPECT_EQ(counter.Count(SimdLevel::kAuto, threads), expected)
        << "threads=" << threads;
  }
}

TEST(TriangleTest, EmptyAndTinyGraphs) {
  Graph empty = Graph::FromEdges(10, {});
  const auto* scalar = baselines::FindBaseline("Scalar");
  EXPECT_EQ(CountTriangles(empty.DegreeOrientedDag(), scalar->fn), 0u);
  Graph one_edge = Graph::FromEdges(2, std::vector<Edge>{{0, 1}});
  EXPECT_EQ(CountTriangles(one_edge.DegreeOrientedDag(), scalar->fn), 0u);
}

}  // namespace
}  // namespace fesia::graph
