// Crash-safety of the snapshot store: the kill-point save loop (a crash at
// every injected point of the atomic-write protocol must recover to the
// last committed generation), manifest/generation corruption walk-back,
// quarantine policy, retention, and the ReadFileBytes guard rails.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "store/snapshot_store.h"
#include "util/fault_injection.h"
#include "util/file_io.h"
#include "util/status.h"

namespace fesia {
namespace {

namespace fs = std::filesystem;

using ::fesia::store::RecoveryReport;
using ::fesia::store::SnapshotStore;
using ::fesia::store::SnapshotStoreOptions;

std::string NewStoreDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "fesia_store_test." + name;
  fs::remove_all(dir);
  return dir;
}

std::vector<uint8_t> Payload(uint8_t tag, size_t n = 256) {
  std::vector<uint8_t> p(n);
  for (size_t i = 0; i < n; ++i) {
    p[i] = static_cast<uint8_t>(tag ^ (i * 31));
  }
  return p;
}

void FlipByteOnDisk(const std::string& path, size_t offset) {
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(path, &bytes).ok()) << path;
  ASSERT_LT(offset, bytes.size());
  bytes[offset] ^= 0xFF;
  ASSERT_TRUE(WriteFileBytes(path, bytes.data(), bytes.size()).ok());
}

size_t CountFilesMatching(const std::string& dir, const std::string& needle) {
  size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().find(needle) != std::string::npos) {
      ++n;
    }
  }
  return n;
}

// --- AtomicWriteFileBytes ------------------------------------------------

TEST(AtomicWriteTest, ReplacesExistingFileAtomically) {
  const std::string dir = NewStoreDir("atomic");
  fs::create_directories(dir);
  const std::string path = dir + "/data.bin";
  const auto v1 = Payload(1);
  const auto v2 = Payload(2);
  ASSERT_TRUE(AtomicWriteFileBytes(path, v1.data(), v1.size()).ok());

  // A torn write must leave the previous contents untouched, plus a temp
  // file as debris (a real crash cannot clean up after itself).
  for (fault::FaultPoint point :
       {fault::FaultPoint::kIoShortWrite,
        fault::FaultPoint::kCrashBeforeRename}) {
    fault::ScopedFault f(point);
    Status s = AtomicWriteFileBytes(path, v2.data(), v2.size());
    EXPECT_EQ(s.code(), StatusCode::kIoError)
        << fault::FaultPointName(point);
    std::vector<uint8_t> got;
    ASSERT_TRUE(ReadFileBytes(path, &got).ok());
    EXPECT_EQ(got, v1) << fault::FaultPointName(point);
    EXPECT_GE(CountFilesMatching(dir, ".tmp."), 1u);
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.path().filename().string().find(".tmp.") !=
          std::string::npos) {
        fs::remove(entry.path());
      }
    }
  }

  // Crash-after-rename: the new bytes are durably in place even though the
  // call reports failure — callers must treat the write as uncommitted.
  {
    fault::ScopedFault f(fault::FaultPoint::kCrashAfterRename);
    Status s = AtomicWriteFileBytes(path, v2.data(), v2.size());
    EXPECT_EQ(s.code(), StatusCode::kIoError);
    std::vector<uint8_t> got;
    ASSERT_TRUE(ReadFileBytes(path, &got).ok());
    EXPECT_EQ(got, v2);
    EXPECT_EQ(CountFilesMatching(dir, ".tmp."), 0u);
  }
}

TEST(AtomicWriteTest, RealFailureCleansUpTempFile) {
  // Writing into a non-existent directory fails outright; unlike the
  // injected crash points, a genuine error must not leave debris behind.
  const std::string dir = NewStoreDir("atomic-clean");
  fs::create_directories(dir);
  Status s = AtomicWriteFileBytes(dir + "/no-such-subdir/x.bin", "ab", 2);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(CountFilesMatching(dir, ".tmp."), 0u);
}

// --- ReadFileBytes guard rails -------------------------------------------

TEST(ReadFileBytesTest, CapsOversizedFiles) {
  const std::string dir = NewStoreDir("read-cap");
  fs::create_directories(dir);
  const std::string path = dir + "/big.bin";
  const auto bytes = Payload(7, 100);
  ASSERT_TRUE(WriteFileBytes(path, bytes.data(), bytes.size()).ok());

  std::vector<uint8_t> out;
  EXPECT_TRUE(ReadFileBytes(path, &out, 100).ok());
  EXPECT_EQ(out, bytes);
  Status s = ReadFileBytes(path, &out, 99);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

TEST(ReadFileBytesTest, AllocationFailureIsStatusNotBadAlloc) {
  const std::string dir = NewStoreDir("read-alloc");
  fs::create_directories(dir);
  const std::string path = dir + "/x.bin";
  const auto bytes = Payload(9, 64);
  ASSERT_TRUE(WriteFileBytes(path, bytes.data(), bytes.size()).ok());

  fault::ScopedFault f(fault::FaultPoint::kAllocation);
  std::vector<uint8_t> out;
  Status s = ReadFileBytes(path, &out);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

// --- SnapshotStore basics ------------------------------------------------

TEST(SnapshotStoreTest, FreshStoreIsEmpty) {
  SnapshotStoreOptions opts;
  opts.dir = NewStoreDir("fresh");
  RecoveryReport rep;
  auto store = SnapshotStore::Open(opts, &rep);
  ASSERT_TRUE(store.ok()) << store.status().message();
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(store->num_generations(), 0u);
  EXPECT_EQ(store->current_generation(), 0u);
  EXPECT_EQ(store->ReadCurrent().status().code(), StatusCode::kDataLoss);
}

TEST(SnapshotStoreTest, SaveReadRoundTrip) {
  SnapshotStoreOptions opts;
  opts.dir = NewStoreDir("roundtrip");
  auto store = SnapshotStore::Open(opts);
  ASSERT_TRUE(store.ok());

  const auto p1 = Payload(1);
  const auto p2 = Payload(2, 1000);
  uint64_t gen = 0;
  ASSERT_TRUE(store->Save(p1, /*format_version=*/7, &gen).ok());
  EXPECT_EQ(gen, 1u);
  ASSERT_TRUE(store->Save(p2, /*format_version=*/7, &gen).ok());
  EXPECT_EQ(gen, 2u);
  EXPECT_EQ(store->current_generation(), 2u);

  uint64_t got_gen = 0;
  auto cur = store->ReadCurrent(&got_gen);
  ASSERT_TRUE(cur.ok()) << cur.status().message();
  EXPECT_EQ(got_gen, 2u);
  EXPECT_EQ(*cur, p2);
  auto old = store->ReadGeneration(1);
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(*old, p1);
  EXPECT_EQ(store->generations()[0].format_version, 7u);

  // Reopening the committed store is clean and serves the same bytes.
  RecoveryReport rep;
  auto reopened = SnapshotStore::Open(opts, &rep);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(rep.clean()) << rep.ToString();
  EXPECT_EQ(rep.recovered_generation, 2u);
  auto cur2 = reopened->ReadCurrent();
  ASSERT_TRUE(cur2.ok());
  EXPECT_EQ(*cur2, p2);
}

TEST(SnapshotStoreTest, RetentionPrunesOldGenerations) {
  SnapshotStoreOptions opts;
  opts.dir = NewStoreDir("retention");
  opts.max_generations = 2;
  auto store = SnapshotStore::Open(opts);
  ASSERT_TRUE(store.ok());

  for (uint8_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(store->Save(Payload(i)).ok());
  }
  ASSERT_EQ(store->num_generations(), 2u);
  EXPECT_EQ(store->generations()[0].generation, 3u);
  EXPECT_EQ(store->generations()[1].generation, 4u);
  // Pruned files really are deleted (retention, not quarantine).
  EXPECT_FALSE(fs::exists(opts.dir + "/snap.000001"));
  EXPECT_FALSE(fs::exists(opts.dir + "/snap.000002"));
  EXPECT_TRUE(fs::exists(opts.dir + "/snap.000004"));
  EXPECT_EQ(store->ReadGeneration(1).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SnapshotStoreTest, OversizedPayloadRejectedOnRead) {
  SnapshotStoreOptions opts;
  opts.dir = NewStoreDir("oversize");
  auto store = SnapshotStore::Open(opts);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Save(Payload(1, 4096)).ok());

  // Reopen with a tight cap: the generation file now exceeds
  // max_snapshot_bytes, so recovery quarantines it rather than allocating.
  opts.max_snapshot_bytes = 128;
  RecoveryReport rep;
  auto reopened = SnapshotStore::Open(opts, &rep);
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss);
}

// --- Kill-point save loop ------------------------------------------------

// One crash rehearsal: which protocol step dies, which of the save's two
// atomic writes it dies in (skip 0 = the payload write, skip 1 = the
// manifest write), and whether the save still reached its commit point.
struct KillPoint {
  const char* name;
  fault::FaultPoint point;
  uint64_t skip;
  bool commits;  // true iff the manifest rename landed before the "crash"
};

class KillPointTest : public ::testing::TestWithParam<KillPoint> {};

// The canonical crash drill: commit generation 1, crash a save of
// generation 2 at the parameterized point, then reopen the store as a
// restarted process would. Recovery must land on the last generation whose
// manifest commit completed — gen 1 for every pre-commit crash, gen 2 when
// the crash hit after the manifest rename — and the report must account
// for all debris.
TEST_P(KillPointTest, RecoversToLastCommittedGeneration) {
  const KillPoint& kp = GetParam();
  SnapshotStoreOptions opts;
  opts.dir = NewStoreDir(std::string("kill.") + kp.name);
  const auto good = Payload(1);
  const auto next = Payload(2, 512);

  auto store = SnapshotStore::Open(opts);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Save(good).ok());

  {
    fault::ScopedFault f(kp.point, kp.skip);
    Status s = store->Save(next);
    ASSERT_FALSE(s.ok()) << kp.name;
    EXPECT_EQ(s.code(), StatusCode::kIoError);
  }

  // The surviving in-memory store never advanced: it still serves gen 1.
  EXPECT_EQ(store->current_generation(), 1u);
  auto still = store->ReadCurrent();
  ASSERT_TRUE(still.ok()) << still.status().message();
  EXPECT_EQ(*still, good);

  // Simulated restart: reopen from disk and recover.
  RecoveryReport rep;
  auto reopened = SnapshotStore::Open(opts, &rep);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  const uint64_t expected_gen = kp.commits ? 2u : 1u;
  EXPECT_EQ(rep.recovered_generation, expected_gen) << rep.ToString();
  uint64_t gen = 0;
  auto recovered = reopened->ReadCurrent(&gen);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_EQ(gen, expected_gen);
  EXPECT_EQ(*recovered, kp.commits ? next : good);

  // Debris accounting. Crashing in either atomic write before its rename
  // leaves a temp file for the sweep; a generation whose payload rename
  // landed but whose manifest commit did not is a quarantined orphan; a
  // save that reached its commit point left nothing behind at all.
  const size_t expect_temp =
      kp.point == fault::FaultPoint::kCrashAfterRename ? 0u : 1u;
  const bool expect_orphan =
      !kp.commits &&
      (kp.skip == 1 || kp.point == fault::FaultPoint::kCrashAfterRename);
  EXPECT_EQ(rep.temp_files_removed, expect_temp) << rep.ToString();
  if (expect_orphan) {
    ASSERT_EQ(rep.quarantined.size(), 1u) << rep.ToString();
    EXPECT_EQ(rep.quarantined[0], 2u);
    EXPECT_EQ(CountFilesMatching(opts.dir, ".quarantine"), 1u);
  } else {
    EXPECT_TRUE(rep.quarantined.empty()) << rep.ToString();
  }
  if (kp.commits) {
    EXPECT_TRUE(rep.clean()) << rep.ToString();
  }
  EXPECT_EQ(CountFilesMatching(opts.dir, ".tmp."), 0u);

  // The recovered store must accept further saves and number them past
  // everything it has ever seen on disk.
  uint64_t gen3 = 0;
  ASSERT_TRUE(reopened->Save(Payload(3), 0, &gen3).ok());
  EXPECT_GT(gen3, expected_gen);
  RecoveryReport rep2;
  auto again = SnapshotStore::Open(opts, &rep2);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(rep2.clean()) << rep2.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllCrashPoints, KillPointTest,
    ::testing::Values(
        KillPoint{"TornPayloadWrite", fault::FaultPoint::kIoShortWrite, 0,
                  false},
        KillPoint{"PayloadTempNotRenamed",
                  fault::FaultPoint::kCrashBeforeRename, 0, false},
        KillPoint{"PayloadRenamedUncommitted",
                  fault::FaultPoint::kCrashAfterRename, 0, false},
        KillPoint{"TornManifestWrite", fault::FaultPoint::kIoShortWrite, 1,
                  false},
        KillPoint{"ManifestTempNotRenamed",
                  fault::FaultPoint::kCrashBeforeRename, 1, false},
        KillPoint{"CommittedBeforeAck", fault::FaultPoint::kCrashAfterRename,
                  1, true}),
    [](const ::testing::TestParamInfo<KillPoint>& info) {
      return info.param.name;
    });

// --- Corruption walk-back ------------------------------------------------

TEST(SnapshotStoreTest, CorruptNewestGenerationWalksBack) {
  SnapshotStoreOptions opts;
  opts.dir = NewStoreDir("walkback");
  const auto p1 = Payload(1);
  const auto p2 = Payload(2);
  {
    auto store = SnapshotStore::Open(opts);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->Save(p1).ok());
    ASSERT_TRUE(store->Save(p2).ok());
  }
  // Rot a payload byte of the newest generation (offset past the 32-byte
  // wrapper header).
  FlipByteOnDisk(opts.dir + "/snap.000002", 100);

  RecoveryReport rep;
  auto reopened = SnapshotStore::Open(opts, &rep);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ(rep.recovered_generation, 1u);
  ASSERT_EQ(rep.quarantined.size(), 1u);
  EXPECT_EQ(rep.quarantined[0], 2u);
  auto cur = reopened->ReadCurrent();
  ASSERT_TRUE(cur.ok());
  EXPECT_EQ(*cur, p1);
  // The rotten bytes were renamed aside, not destroyed.
  EXPECT_TRUE(fs::exists(opts.dir + "/snap.000002.quarantine"));
  EXPECT_FALSE(fs::exists(opts.dir + "/snap.000002"));
}

TEST(SnapshotStoreTest, CorruptManifestFallsBackToSelfValidation) {
  SnapshotStoreOptions opts;
  opts.dir = NewStoreDir("manifest-corrupt");
  const auto p2 = Payload(2);
  {
    auto store = SnapshotStore::Open(opts);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->Save(Payload(1)).ok());
    ASSERT_TRUE(store->Save(p2).ok());
  }
  FlipByteOnDisk(opts.dir + "/MANIFEST", 20);

  RecoveryReport rep;
  auto reopened = SnapshotStore::Open(opts, &rep);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_TRUE(rep.manifest_corrupt);
  EXPECT_EQ(rep.recovered_generation, 2u);
  EXPECT_EQ(reopened->num_generations(), 2u);
  auto cur = reopened->ReadCurrent();
  ASSERT_TRUE(cur.ok());
  EXPECT_EQ(*cur, p2);

  // Recovery re-committed a fresh manifest: the next open is clean.
  RecoveryReport rep2;
  auto again = SnapshotStore::Open(opts, &rep2);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(rep2.clean()) << rep2.ToString();
}

TEST(SnapshotStoreTest, MissingManifestFallsBackToSelfValidation) {
  SnapshotStoreOptions opts;
  opts.dir = NewStoreDir("manifest-missing");
  const auto p2 = Payload(2);
  {
    auto store = SnapshotStore::Open(opts);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->Save(Payload(1)).ok());
    ASSERT_TRUE(store->Save(p2).ok());
  }
  fs::remove(opts.dir + "/MANIFEST");

  RecoveryReport rep;
  auto reopened = SnapshotStore::Open(opts, &rep);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_TRUE(rep.manifest_missing);
  EXPECT_EQ(rep.recovered_generation, 2u);
  auto cur = reopened->ReadCurrent();
  ASSERT_TRUE(cur.ok());
  EXPECT_EQ(*cur, p2);
}

TEST(SnapshotStoreTest, ManifestEntryWithVanishedFileIsDropped) {
  SnapshotStoreOptions opts;
  opts.dir = NewStoreDir("vanished");
  const auto p1 = Payload(1);
  {
    auto store = SnapshotStore::Open(opts);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->Save(p1).ok());
    ASSERT_TRUE(store->Save(Payload(2)).ok());
  }
  fs::remove(opts.dir + "/snap.000002");

  RecoveryReport rep;
  auto reopened = SnapshotStore::Open(opts, &rep);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ(rep.missing_files, 1u);
  EXPECT_EQ(rep.recovered_generation, 1u);
  auto cur = reopened->ReadCurrent();
  ASSERT_TRUE(cur.ok());
  EXPECT_EQ(*cur, p1);
}

TEST(SnapshotStoreTest, EveryGenerationCorruptIsDataLoss) {
  SnapshotStoreOptions opts;
  opts.dir = NewStoreDir("all-corrupt");
  {
    auto store = SnapshotStore::Open(opts);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->Save(Payload(1)).ok());
    ASSERT_TRUE(store->Save(Payload(2)).ok());
  }
  FlipByteOnDisk(opts.dir + "/snap.000001", 50);
  FlipByteOnDisk(opts.dir + "/snap.000002", 50);

  RecoveryReport rep;
  auto reopened = SnapshotStore::Open(opts, &rep);
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss);
  // The report is filled even on failure, and nothing was deleted.
  EXPECT_EQ(rep.quarantined.size(), 2u);
  EXPECT_EQ(rep.recovered_generation, 0u);
  EXPECT_EQ(CountFilesMatching(opts.dir, ".quarantine"), 2u);
}

TEST(SnapshotStoreTest, ExplicitQuarantineFallsBackAndNamesUniquely) {
  SnapshotStoreOptions opts;
  opts.dir = NewStoreDir("quarantine");
  auto store = SnapshotStore::Open(opts);
  ASSERT_TRUE(store.ok());
  const auto p1 = Payload(1);
  ASSERT_TRUE(store->Save(p1).ok());
  ASSERT_TRUE(store->Save(Payload(2)).ok());

  ASSERT_TRUE(store->Quarantine(2).ok());
  EXPECT_EQ(store->current_generation(), 1u);
  auto cur = store->ReadCurrent();
  ASSERT_TRUE(cur.ok());
  EXPECT_EQ(*cur, p1);
  EXPECT_TRUE(fs::exists(opts.dir + "/snap.000002.quarantine"));

  // Saving again reuses generation id 2; quarantining it again must pick a
  // fresh aside-name instead of clobbering the first.
  ASSERT_TRUE(store->Save(Payload(3)).ok());
  ASSERT_EQ(store->current_generation(), 2u);
  ASSERT_TRUE(store->Quarantine(2).ok());
  EXPECT_TRUE(fs::exists(opts.dir + "/snap.000002.quarantine.1"));

  EXPECT_EQ(store->Quarantine(99).code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace fesia
