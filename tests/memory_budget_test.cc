// Unit tests for the hierarchical MemoryBudget / ScopedCharge primitive:
// charge/uncharge accounting, hard-limit refusals with ancestor rollback,
// watermark hysteresis, RAII/move semantics, the budget-exhausted fault
// point, and a concurrent charge storm that must balance to zero.
#include "util/memory_budget.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/fault_injection.h"

namespace fesia {
namespace {

TEST(MemoryBudgetTest, UnlimitedCountsButNeverRefuses) {
  MemoryBudget b;
  EXPECT_TRUE(b.unlimited());
  EXPECT_EQ(b.used(), 0u);
  EXPECT_TRUE(b.TryCharge(1ull << 40).ok());
  EXPECT_EQ(b.used(), 1ull << 40);
  EXPECT_FALSE(b.under_pressure());
  b.Uncharge(1ull << 40);
  EXPECT_EQ(b.used(), 0u);
}

TEST(MemoryBudgetTest, ZeroByteChargeIsFree) {
  MemoryBudget b(100);
  EXPECT_TRUE(b.TryCharge(0).ok());
  EXPECT_EQ(b.used(), 0u);
  EXPECT_EQ(b.rejections(), 0u);
}

TEST(MemoryBudgetTest, HardLimitRefusesAndRollsBack) {
  MemoryBudget b(1000, nullptr, "store");
  EXPECT_TRUE(b.TryCharge(900).ok());
  Status s = b.TryCharge(200, "snapshot payload");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  // Refusal message names the budget and the operation.
  EXPECT_NE(s.ToString().find("store"), std::string::npos);
  EXPECT_NE(s.ToString().find("snapshot payload"), std::string::npos);
  // Usage is exactly what it was before the refused call.
  EXPECT_EQ(b.used(), 900u);
  EXPECT_EQ(b.rejections(), 1u);
  // Exactly at the limit is admitted.
  EXPECT_TRUE(b.TryCharge(100).ok());
  EXPECT_EQ(b.used(), 1000u);
}

TEST(MemoryBudgetTest, ChargePropagatesToParent) {
  MemoryBudget parent(10000, nullptr, "process");
  MemoryBudget child(5000, &parent, "shard-0");
  EXPECT_TRUE(child.TryCharge(3000).ok());
  EXPECT_EQ(child.used(), 3000u);
  EXPECT_EQ(parent.used(), 3000u);
  child.Uncharge(3000);
  EXPECT_EQ(child.used(), 0u);
  EXPECT_EQ(parent.used(), 0u);
}

TEST(MemoryBudgetTest, ParentRefusalRollsBackChild) {
  MemoryBudget parent(1000, nullptr, "process");
  MemoryBudget a(MemoryBudget::kNoLimit, &parent, "shard-a");
  MemoryBudget b(MemoryBudget::kNoLimit, &parent, "shard-b");
  EXPECT_TRUE(a.TryCharge(800).ok());
  // b's own (unlimited) budget admits, but the shared parent refuses; b's
  // partial charge must be rolled back.
  Status s = b.TryCharge(400);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(b.used(), 0u);
  EXPECT_EQ(parent.used(), 800u);
  // The parent, not b, counted the rejection.
  EXPECT_EQ(b.rejections(), 0u);
  EXPECT_EQ(parent.rejections(), 1u);
}

TEST(MemoryBudgetTest, ChildRefusalNeverTouchesParent) {
  MemoryBudget parent(MemoryBudget::kNoLimit, nullptr, "process");
  MemoryBudget child(100, &parent, "op");
  EXPECT_EQ(child.TryCharge(200).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(parent.used(), 0u);
}

TEST(MemoryBudgetTest, PressureHysteresis) {
  MemoryBudget b(1000);
  // Defaults: high = limit - limit/8 = 875, low = limit/2 = 500.
  EXPECT_EQ(b.high_watermark_bytes(), 875u);
  EXPECT_EQ(b.low_watermark_bytes(), 500u);
  EXPECT_TRUE(b.TryCharge(800).ok());
  EXPECT_FALSE(b.under_pressure());
  EXPECT_TRUE(b.TryCharge(100).ok());  // 900 >= 875: pressure raises
  EXPECT_TRUE(b.under_pressure());
  b.Uncharge(100);  // 800: inside the band, pressure is sticky
  EXPECT_TRUE(b.under_pressure());
  b.Uncharge(400);  // 400 < 500: pressure clears
  EXPECT_FALSE(b.under_pressure());
}

TEST(MemoryBudgetTest, AncestorPressureShowsThrough) {
  MemoryBudget parent(1000, nullptr, "process");
  MemoryBudget child(MemoryBudget::kNoLimit, &parent, "shard");
  EXPECT_FALSE(child.under_pressure());
  EXPECT_TRUE(child.TryCharge(950).ok());
  EXPECT_TRUE(parent.under_pressure());
  EXPECT_TRUE(child.under_pressure());
  child.Uncharge(950);
  EXPECT_FALSE(child.under_pressure());
}

TEST(MemoryBudgetTest, SetWatermarksRederivesPressure) {
  MemoryBudget b(1000);
  EXPECT_TRUE(b.TryCharge(600).ok());
  EXPECT_FALSE(b.under_pressure());
  b.set_watermarks(/*high_bytes=*/500, /*low_bytes=*/200);
  EXPECT_TRUE(b.under_pressure());
  b.Uncharge(500);  // 100 < 200
  EXPECT_FALSE(b.under_pressure());
}

TEST(MemoryBudgetTest, OverReleaseClampsToZero) {
  MemoryBudget b(1000);
  EXPECT_TRUE(b.TryCharge(10).ok());
  b.Uncharge(1000);  // caller bug: must clamp, not wrap
  EXPECT_EQ(b.used(), 0u);
}

TEST(MemoryBudgetTest, UnlimitedSingletonIsStable) {
  MemoryBudget* u = MemoryBudget::Unlimited();
  ASSERT_NE(u, nullptr);
  EXPECT_EQ(u, MemoryBudget::Unlimited());
  EXPECT_TRUE(u->unlimited());
  const uint64_t before = u->used();
  EXPECT_TRUE(u->TryCharge(64).ok());
  u->Uncharge(64);
  EXPECT_EQ(u->used(), before);
}

TEST(MemoryBudgetTest, BudgetExhaustedFaultFiresOnce) {
  MemoryBudget b(MemoryBudget::kNoLimit, nullptr, "faulted");
  fault::ScopedFault f(fault::FaultPoint::kBudgetExhausted);
  Status s = b.TryCharge(8);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(b.used(), 0u);
  EXPECT_EQ(b.rejections(), 1u);
  // Fired once, then disarmed: the next charge is admitted.
  EXPECT_TRUE(b.TryCharge(8).ok());
  EXPECT_EQ(b.used(), 8u);
  b.Uncharge(8);
}

TEST(ScopedChargeTest, ReleasesOnDestruction) {
  MemoryBudget b(1000);
  {
    ScopedCharge c(&b);
    EXPECT_TRUE(c.Add(400).ok());
    EXPECT_TRUE(c.Add(100).ok());
    EXPECT_EQ(c.bytes(), 500u);
    EXPECT_EQ(b.used(), 500u);
  }
  EXPECT_EQ(b.used(), 0u);
}

TEST(ScopedChargeTest, RefusedAddLeavesExistingCharge) {
  MemoryBudget b(1000);
  ScopedCharge c(&b);
  EXPECT_TRUE(c.Add(900).ok());
  EXPECT_EQ(c.Add(200).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(c.bytes(), 900u);
  EXPECT_EQ(b.used(), 900u);
}

TEST(ScopedChargeTest, ShrinkReturnsBytesEarly) {
  MemoryBudget b(1000);
  ScopedCharge c(&b);
  EXPECT_TRUE(c.Add(600).ok());
  c.Shrink(200);
  EXPECT_EQ(c.bytes(), 400u);
  EXPECT_EQ(b.used(), 400u);
  c.Shrink(10000);  // clamped to the held amount
  EXPECT_EQ(c.bytes(), 0u);
  EXPECT_EQ(b.used(), 0u);
}

TEST(ScopedChargeTest, MoveTransfersOwnership) {
  MemoryBudget b(1000);
  ScopedCharge outer;
  {
    ScopedCharge inner(&b);
    EXPECT_TRUE(inner.Add(300).ok());
    outer = std::move(inner);
    EXPECT_EQ(inner.bytes(), 0u);  // NOLINT(bugprone-use-after-move)
  }
  // inner's destruction must not have released outer's bytes.
  EXPECT_EQ(b.used(), 300u);
  EXPECT_EQ(outer.bytes(), 300u);
  outer.Release();
  EXPECT_EQ(b.used(), 0u);
}

TEST(ScopedChargeTest, InertGuardIsNoOp) {
  ScopedCharge c;
  EXPECT_TRUE(c.Add(1 << 20).ok());
  EXPECT_EQ(c.bytes(), 0u);
  c.Shrink(5);
  c.Release();
}

TEST(MemoryBudgetTest, ConcurrentChargeStormBalances) {
  MemoryBudget parent(MemoryBudget::kNoLimit, nullptr, "process");
  MemoryBudget child(1 << 20, &parent, "shard");
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&child, t] {
      for (int i = 0; i < kIters; ++i) {
        const uint64_t bytes = 64 + static_cast<uint64_t>((t * 31 + i) % 512);
        if (child.TryCharge(bytes).ok()) child.Uncharge(bytes);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Every successful charge was matched by an uncharge at both levels.
  EXPECT_EQ(child.used(), 0u);
  EXPECT_EQ(parent.used(), 0u);
}

}  // namespace
}  // namespace fesia
