// Every baseline intersection method against the std::set_intersection
// reference, across sizes, selectivities and skews.
#include "baselines/registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "baselines/bmiss.h"
#include "baselines/galloping.h"
#include "baselines/hash_intersect.h"
#include "baselines/kway.h"
#include "baselines/scalar_merge.h"
#include "baselines/shuffling.h"
#include "baselines/simd_galloping.h"
#include "datagen/datagen.h"
#include "util/rng.h"

namespace fesia::baselines {
namespace {

using ::fesia::datagen::PairWithSelectivity;
using ::fesia::datagen::ReferenceIntersectionSize;
using ::fesia::datagen::SetPair;
using ::fesia::datagen::SortedUniform;

class BaselineMethodTest : public ::testing::TestWithParam<Method> {};

TEST_P(BaselineMethodTest, RandomPairs) {
  const Method& m = GetParam();
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SetPair p = PairWithSelectivity(1000 + seed * 300, 2000, 0.1, seed);
    EXPECT_EQ(m.fn(p.a.data(), p.a.size(), p.b.data(), p.b.size()),
              p.intersection_size)
        << m.name << " seed=" << seed;
  }
}

TEST_P(BaselineMethodTest, SelectivitySweep) {
  const Method& m = GetParam();
  for (double sel : {0.0, 0.05, 0.5, 1.0}) {
    SetPair p = PairWithSelectivity(1777, 1777, sel, 42);
    EXPECT_EQ(m.fn(p.a.data(), p.a.size(), p.b.data(), p.b.size()),
              p.intersection_size)
        << m.name << " sel=" << sel;
  }
}

TEST_P(BaselineMethodTest, SkewSweep) {
  const Method& m = GetParam();
  for (size_t n1 : {1, 7, 100, 1500}) {
    SetPair p = PairWithSelectivity(n1, 10000, 0.5, n1);
    EXPECT_EQ(m.fn(p.a.data(), p.a.size(), p.b.data(), p.b.size()),
              p.intersection_size)
        << m.name << " n1=" << n1;
    // Swapped argument order.
    EXPECT_EQ(m.fn(p.b.data(), p.b.size(), p.a.data(), p.a.size()),
              p.intersection_size)
        << m.name << " n1=" << n1 << " (swapped)";
  }
}

TEST_P(BaselineMethodTest, EmptyAndDegenerate) {
  const Method& m = GetParam();
  std::vector<uint32_t> v = {1, 5, 9};
  EXPECT_EQ(m.fn(nullptr, 0, nullptr, 0), 0u) << m.name;
  EXPECT_EQ(m.fn(v.data(), v.size(), nullptr, 0), 0u) << m.name;
  EXPECT_EQ(m.fn(nullptr, 0, v.data(), v.size()), 0u) << m.name;
  EXPECT_EQ(m.fn(v.data(), v.size(), v.data(), v.size()), 3u) << m.name;
}

TEST_P(BaselineMethodTest, SingleElementMatchAndMiss) {
  const Method& m = GetParam();
  std::vector<uint32_t> one = {500};
  std::vector<uint32_t> big = SortedUniform(5000, 10000, 3);
  bool expected = std::binary_search(big.begin(), big.end(), 500u);
  EXPECT_EQ(m.fn(one.data(), 1, big.data(), big.size()),
            expected ? 1u : 0u)
      << m.name;
}

TEST_P(BaselineMethodTest, NonOverlappingRanges) {
  const Method& m = GetParam();
  std::vector<uint32_t> lo(100), hi(100);
  for (uint32_t i = 0; i < 100; ++i) {
    lo[i] = i;
    hi[i] = 1000 + i;
  }
  EXPECT_EQ(m.fn(lo.data(), 100, hi.data(), 100), 0u) << m.name;
}

TEST_P(BaselineMethodTest, LargeInputs) {
  const Method& m = GetParam();
  SetPair p = PairWithSelectivity(100000, 100000, 0.01, 9);
  EXPECT_EQ(m.fn(p.a.data(), p.a.size(), p.b.data(), p.b.size()),
            p.intersection_size)
      << m.name;
}

INSTANTIATE_TEST_SUITE_P(AllMethods, BaselineMethodTest,
                         ::testing::ValuesIn(AllBaselines()),
                         [](const ::testing::TestParamInfo<Method>& info) {
                           return info.param.name;
                         });

// --- Materializing variants --------------------------------------------------

using MaterializeFn = size_t (*)(const uint32_t*, size_t, const uint32_t*,
                                 size_t, uint32_t*);

struct NamedMaterializer {
  std::string name;
  MaterializeFn fn;
};

class MaterializeTest : public ::testing::TestWithParam<NamedMaterializer> {};

TEST_P(MaterializeTest, EmitsExactSortedIntersection) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    SetPair p = PairWithSelectivity(1200, 900, 0.2, seed * 7);
    std::vector<uint32_t> expected;
    std::set_intersection(p.a.begin(), p.a.end(), p.b.begin(), p.b.end(),
                          std::back_inserter(expected));
    std::vector<uint32_t> out(std::min(p.a.size(), p.b.size()));
    size_t r = GetParam().fn(p.a.data(), p.a.size(), p.b.data(), p.b.size(),
                             out.data());
    ASSERT_EQ(r, expected.size()) << GetParam().name;
    out.resize(r);
    EXPECT_EQ(out, expected) << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMaterializers, MaterializeTest,
    ::testing::Values(NamedMaterializer{"ScalarMerge", &ScalarMergeInto},
                      NamedMaterializer{"Galloping", &ScalarGallopingInto},
                      NamedMaterializer{"Shuffling", &ShufflingInto},
                      NamedMaterializer{"BMiss", &BMissInto},
                      NamedMaterializer{"SIMDGalloping", &SimdGallopingInto}),
    [](const ::testing::TestParamInfo<NamedMaterializer>& info) {
      return info.param.name;
    });

// --- Registry ----------------------------------------------------------------

TEST(RegistryTest, ContainsPaperMethods) {
  for (const char* name : {"Scalar", "ScalarGalloping", "Shuffling", "BMiss",
                           "SIMDGalloping", "Hash"}) {
    EXPECT_NE(FindBaseline(name), nullptr) << name;
  }
  EXPECT_EQ(FindBaseline("NoSuchMethod"), nullptr);
}

// --- Scalar merge branch parity ----------------------------------------------

TEST(ScalarMergeTest, BranchyAndBranchlessAgree) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SetPair p = PairWithSelectivity(777, 1234, 0.3, seed);
    EXPECT_EQ(ScalarMerge(p.a.data(), p.a.size(), p.b.data(), p.b.size()),
              ScalarMergeBranchless(p.a.data(), p.a.size(), p.b.data(),
                                    p.b.size()));
  }
}

// --- Galloping internals -------------------------------------------------------

TEST(GallopingTest, GallopLowerBoundMatchesStd) {
  std::vector<uint32_t> v = SortedUniform(1000, 100000, 5);
  Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    uint32_t key = static_cast<uint32_t>(rng.Below(100000));
    size_t expected = static_cast<size_t>(
        std::lower_bound(v.begin(), v.end(), key) - v.begin());
    // The hint must not be past the true position (that is the caller
    // contract: cursors only trail the current key).
    size_t hint = rng.Below(expected + 1);
    EXPECT_EQ(GallopLowerBound(v.data(), v.size(), hint, key), expected)
        << "key=" << key << " hint=" << hint;
  }
}

// --- Hash set ------------------------------------------------------------------

TEST(HashSetTest, ContainsExactly) {
  std::vector<uint32_t> keys = SortedUniform(2000, 10000, 8);
  HashSet32 set(keys.data(), keys.size());
  std::vector<bool> member(10000, false);
  for (uint32_t k : keys) member[k] = true;
  for (uint32_t x = 0; x < 10000; ++x) {
    EXPECT_EQ(set.Contains(x), member[x]) << x;
  }
}

TEST(HashSetTest, CapacityIsPow2AndRoomy) {
  std::vector<uint32_t> keys = SortedUniform(100, 1000, 9);
  HashSet32 set(keys.data(), keys.size());
  EXPECT_GE(set.capacity(), 200u);
  EXPECT_EQ(set.capacity() & (set.capacity() - 1), 0u);
}

// --- k-way baselines ------------------------------------------------------------

TEST(KWayBaselineTest, AllAgreeWithReference) {
  auto raw = fesia::datagen::KSetsWithDensity(4, 2000, 0.5, 10);
  size_t expected = fesia::datagen::ReferenceIntersection(raw).size();
  std::vector<SetView> views;
  for (const auto& s : raw) views.push_back({s.data(), s.size()});
  EXPECT_EQ(KWayMerge(views), expected);
  EXPECT_EQ(KWayGalloping(views), expected);
  EXPECT_EQ(KWayShuffling(views), expected);
}

TEST(KWayBaselineTest, MaterializedElements) {
  auto raw = fesia::datagen::KSetsWithDensity(3, 1000, 0.6, 12);
  auto expected = fesia::datagen::ReferenceIntersection(raw);
  std::vector<SetView> views;
  for (const auto& s : raw) views.push_back({s.data(), s.size()});
  EXPECT_EQ(KWayMergeInto(views), expected);
}

TEST(KWayBaselineTest, DegenerateArities) {
  std::vector<uint32_t> a = {1, 2, 3};
  std::vector<SetView> one = {{a.data(), a.size()}};
  EXPECT_EQ(KWayMerge(one), 3u);
  EXPECT_EQ(KWayGalloping(one), 3u);
  EXPECT_EQ(KWayMerge(std::span<const SetView>{}), 0u);
  EXPECT_EQ(KWayGalloping(std::span<const SetView>{}), 0u);
}

}  // namespace
}  // namespace fesia::baselines
